"""The ``FrameSource`` protocol: source-agnostic input to the EDA pipeline.

The compute layer (Section 5.2 of the paper) is one lazy partitioned
pipeline — per-partition work, tree merge, finalize — regardless of where
the bytes come from.  This module defines the contract a data source must
satisfy to feed that pipeline, plus the three built-in implementations:

* :class:`InMemorySource` — wraps a materialized :class:`DataFrame`;
  partitions are lazy row slices and every reduction may use the exact
  (unbounded per-value memory) finalizers.
* :class:`CsvSource` — wraps one :class:`~repro.frame.io.ScannedFrame`
  (the quote-aware CSV layout scan); partitions parse record-aligned byte
  ranges lazily, so reductions must use bounded-memory sketches.
* :class:`MultiFileCsvSource` — several per-file layout scans concatenated
  into one logical frame.  ``repro.scan_csv`` returns one for a list or
  glob of paths.  All files share the first file's inferred dtypes (plus
  user overrides) so every partition agrees on storage types, and the
  fingerprint covers every file's ``(path, size, mtime_ns)`` stamp so the
  cross-call intermediate cache stays warm across sessions as long as the
  files are unchanged.

A source declares :class:`SourceCapabilities`; the reduction planner in
:mod:`repro.eda.compute.base` picks exact vs. sketch chunk/combine/finalize
triples from them, which is what lets a new backend (compressed CSV,
columnar files, remote objects) land as one source class instead of a new
fork through every compute module.

Implementing a custom source
----------------------------
Provide the :class:`FrameSource` members: schema (``columns`` /``dtypes`` /
``n_rows`` / ``schema_preview``), a content ``fingerprint`` (stable across
processes for unchanged data — it feeds cross-call cache keys), and
``partitions()`` returning :class:`SourcePartition` rows-ranges whose
``func``/``args`` lazily materialize each chunk.  ``func`` must be a
module-level function and every argument fingerprintable (paths, numbers,
tuples, dtype enums), otherwise the partition tasks are excluded from the
cross-call cache.  Declare ``capabilities.exact=False`` unless the whole
dataset may safely coexist in memory.  Declare
``capabilities.projection=True`` only when the partition ``func`` accepts a
``columns=`` keyword naming a column subset and materializes just those
columns — the EDA planner then pushes each reduction's required-column set
down into the partition tasks (``materialize(columns=...)``).  See
``docs/architecture.md`` for a worked example.
"""

from __future__ import annotations

import glob as glob_module
import inspect
import os
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.errors import FrameError
from repro.frame.dtypes import DType
from repro.frame.fingerprint import fingerprint_file_stamps
from repro.frame.frame import DataFrame, concat_rows
from repro.frame.io import ScannedFrame, _scan_csv_file, parse_csv_range
from repro.utils import projected_prefix

#: Default number of rows per in-memory partition (mirrors the graph layer).
DEFAULT_PARTITION_ROWS = 100_000


# --------------------------------------------------------------------------- #
# Partition task functions.
#
# Module-level (never lambdas) so the optimizer's CSE pass and the cross-call
# cache can fingerprint them; the graph layer wraps them with ``delayed``.
# --------------------------------------------------------------------------- #
def _slice_frame(frame: DataFrame, start: int, stop: int,
                 columns: Optional[Tuple[str, ...]] = None) -> DataFrame:
    """Materialize one row partition of an in-memory frame.

    *columns* projects the partition onto a column subset.  Both the
    projected and the full slice are zero-copy: every partition column is a
    view into the source frame's buffers
    (:meth:`~repro.frame.column.Column.slice_view`), so slicing costs
    O(columns kept), never O(rows).
    """
    names = frame.columns if columns is None else list(columns)
    return DataFrame([frame.column(name).slice_view(start, stop)
                      for name in names])


def _read_csv_slice(path: str, byte_start: int, byte_stop: int,
                    column_names: Tuple[str, ...], dtypes: dict,
                    file_stamp: Tuple[int, int] = (0, 0),
                    delimiter: str = ",",
                    expected_rows: Optional[int] = None,
                    columns: Optional[Tuple[str, ...]] = None) -> DataFrame:
    """Parse one byte range of a CSV file into a DataFrame partition.

    *file_stamp* (size, mtime_ns of the file at graph-build time) is not
    used here — it exists so the task's cross-call cache key changes when
    the file is overwritten in place, even with identical byte boundaries.

    *columns* projects the parse onto a column subset: the other columns'
    cells are skipped before collection and dtype coercion (the hot path of
    a streaming scan), so a single-column reduction over a wide file pays
    for one column, not the whole table.  The projection is an explicit
    task argument, which is what makes projected and full parses occupy
    distinct cross-call cache keys — a cached single-column partition can
    never be served where a full-table partition is needed.

    When *expected_rows* is given (the layout scan's record count for this
    range) a mismatch raises instead of letting every downstream statistic
    silently disagree with the row boundaries: it means the file's quoting
    defies record-aligned chunking — e.g. a stray unpaired quote inside an
    unquoted field, which RFC 4180 forbids but ``csv.reader`` tolerates.
    """
    frame = parse_csv_range(path, byte_start, byte_stop, list(column_names),
                            dtypes, delimiter=delimiter, usecols=columns)
    if expected_rows is not None and len(frame) != expected_rows:
        raise FrameError(
            f"CSV chunk at bytes [{byte_start}, {byte_stop}) of {path!r} "
            f"parsed {len(frame)} rows where the layout scan counted "
            f"{expected_rows}; the file's quoting defies record-aligned "
            f"chunking (e.g. an unpaired quote in an unquoted field) — "
            f"read it with repro.read_csv instead of scan_csv")
    return frame


#: Memoized "does this partition func accept a columns= keyword" checks.
#: Only module-level functions enter the cache — they are process-permanent,
#: so a strong reference costs nothing — while per-call closures/partials
#: (which the protocol allows, at the price of never being cached across
#: calls) are re-inspected each time rather than pinned forever.
_COLUMNS_KEYWORD_SUPPORT: Dict[Callable[..., Any], bool] = {}


def _accepts_columns(func: Callable[..., Any]) -> bool:
    """Whether *func* can receive the ``columns=`` projection keyword."""
    qualname = getattr(func, "__qualname__", "")
    memoizable = bool(getattr(func, "__module__", None)) and \
        qualname and "<" not in qualname
    if memoizable:
        cached = _COLUMNS_KEYWORD_SUPPORT.get(func)
        if cached is not None:
            return cached
    try:
        parameters = inspect.signature(func).parameters
    except (TypeError, ValueError):         # builtins without signatures
        accepts = False
    else:
        accepts = "columns" in parameters or any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values())
    if memoizable:
        _COLUMNS_KEYWORD_SUPPORT[func] = accepts
    return accepts


# --------------------------------------------------------------------------- #
# The protocol
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SourceCapabilities:
    """What the reduction planner may assume about a source.

    ``exact``
        True when the whole dataset may safely coexist in memory, so every
        reduction may use the exact finalizers (full value-count tables,
        fraction-based row samples, the exact duplicate scan).  False means
        the source streams from storage and reductions must use the
        bounded-memory sketch variants instead.
    ``projection``
        True when the source's partition task functions accept a
        ``columns=`` keyword and materialize only that column subset
        (see :meth:`SourcePartition.materialize`).  The planner then pushes
        each reduction's required-column set down into the partition tasks.
        Defaults to False so a pre-existing custom source keeps its
        full-materialization behaviour until it opts in.
    """

    exact: bool = True
    projection: bool = False


@dataclass(frozen=True)
class SourcePartition:
    """One lazily-materialized row chunk of a source.

    ``start`` / ``stop`` are precomputed global row boundaries (the paper's
    "precompute chunk sizes" stage), known before any lazy graph is built.
    ``func(*args)`` materializes the chunk as a :class:`DataFrame`; the
    graph layer wraps it in a task, so *func* must be module-level and
    *args* fingerprintable for the partition to be cacheable across calls.
    """

    start: int
    stop: int
    func: Callable[..., DataFrame]
    args: Tuple[Any, ...]
    prefix: str = "partition"

    @property
    def n_rows(self) -> int:
        """Number of rows in this partition (known without materializing)."""
        return self.stop - self.start

    def task_spec(self, columns: Optional[Sequence[str]] = None
                  ) -> Tuple[Callable[..., DataFrame], Tuple[Any, ...],
                             Dict[str, Any], str]:
        """``(func, args, kwargs, key prefix)`` of this partition's task.

        With *columns* the task materializes only that column subset:
        the projection travels as an explicit ``columns=`` keyword (so
        cache keys and CSE tokens incorporate it) and the key prefix gains
        the projected marker (so run statistics can count projected vs.
        full parses).  Only sources declaring
        ``capabilities.projection=True`` support a non-None projection; a
        partition whose func takes no ``columns=`` keyword is rejected
        here with a clear error rather than a ``TypeError`` from deep
        inside the func at execution time.
        """
        if columns is None:
            return self.func, self.args, {}, self.prefix
        if not _accepts_columns(self.func):
            raise FrameError(
                f"partition func {getattr(self.func, '__name__', self.func)!r} "
                f"takes no columns= keyword; this source does not support "
                f"column projection (declare capabilities.projection=True "
                f"only once its partition funcs accept a column subset)")
        return (self.func, self.args, {"columns": tuple(columns)},
                projected_prefix(self.prefix))

    def materialize(self, columns: Optional[Sequence[str]] = None) -> DataFrame:
        """Eagerly materialize the chunk (tests and non-graph callers).

        *columns* restricts the materialization to a column subset for
        projection-capable sources — zero-copy views for
        :class:`InMemorySource`, a projected byte-range parse for the CSV
        sources.
        """
        func, args, kwargs, _ = self.task_spec(columns)
        return func(*args, **kwargs)


@runtime_checkable
class FrameSource(Protocol):
    """Anything the EDA pipeline can partition and stream.

    See the module docstring for the contract; :func:`as_source` adapts the
    user-facing input types (``DataFrame``, ``ScannedFrame``) onto it.
    """

    @property
    def columns(self) -> List[str]: ...          # pragma: no cover - protocol

    @property
    def dtypes(self) -> Dict[str, DType]: ...    # pragma: no cover - protocol

    @property
    def n_rows(self) -> int: ...                 # pragma: no cover - protocol

    @property
    def capabilities(self) -> SourceCapabilities: ...  # pragma: no cover

    def schema_preview(self) -> DataFrame: ...   # pragma: no cover - protocol

    def fingerprint(self) -> str: ...            # pragma: no cover - protocol

    def footprint_bytes(self) -> int: ...        # pragma: no cover - protocol

    def materialization_bytes(self) -> int: ...  # pragma: no cover - protocol

    def partitions(self) -> List[SourcePartition]: ...  # pragma: no cover

    def with_partitioning(self, chunk_rows: Optional[int] = None,
                          budget_bytes: Optional[int] = None,
                          concurrency: int = 1) -> "FrameSource":
        ...                                      # pragma: no cover - protocol

    def to_frame(self) -> DataFrame: ...         # pragma: no cover - protocol


# --------------------------------------------------------------------------- #
# In-memory frames
# --------------------------------------------------------------------------- #
class InMemorySource:
    """A :class:`FrameSource` over a materialized :class:`DataFrame`.

    Partitions are lazy row slices over the already-resident arrays, so the
    source declares ``capabilities.exact=True``: reductions keep today's
    exact results, pinned by the streaming-equivalence suite.
    """

    def __init__(self, frame: DataFrame, partition_rows: Optional[int] = None):
        if not isinstance(frame, DataFrame):
            raise FrameError("InMemorySource expects a repro.frame.DataFrame")
        if partition_rows is not None and partition_rows <= 0:
            raise FrameError("partition_rows must be positive")
        self._frame = frame
        self._partition_rows = partition_rows

    @property
    def frame(self) -> DataFrame:
        """The wrapped frame (the exact object, not a copy)."""
        return self._frame

    @property
    def columns(self) -> List[str]:
        return self._frame.columns

    @property
    def dtypes(self) -> Dict[str, DType]:
        return self._frame.dtypes

    @property
    def n_rows(self) -> int:
        return len(self._frame)

    @property
    def capabilities(self) -> SourceCapabilities:
        return SourceCapabilities(exact=True, projection=True)

    def schema_preview(self) -> DataFrame:
        """Schema questions may read the whole frame — it is already resident."""
        return self._frame

    def fingerprint(self) -> str:
        return self._frame.fingerprint()

    def footprint_bytes(self) -> int:
        return self._frame.memory_bytes()

    def materialization_bytes(self) -> int:
        return self._frame.memory_bytes()

    def partitions(self) -> List[SourcePartition]:
        rows = self._partition_rows or DEFAULT_PARTITION_ROWS
        return [SourcePartition(start, stop, _slice_frame,
                                (self._frame, start, stop), prefix="partition")
                for start, stop in _row_boundaries(len(self._frame), rows)]

    def with_partitioning(self, chunk_rows: Optional[int] = None,
                          budget_bytes: Optional[int] = None,
                          concurrency: int = 1) -> "InMemorySource":
        """Re-plan the partition granularity (the budget is irrelevant here)."""
        if chunk_rows is None or chunk_rows == self._partition_rows:
            return self
        return InMemorySource(self._frame, partition_rows=chunk_rows)

    def to_frame(self) -> DataFrame:
        return self._frame

    def __repr__(self) -> str:
        return (f"InMemorySource(rows={len(self._frame)}, "
                f"columns={self._frame.columns})")


def _row_boundaries(n_rows: int, partition_rows: int) -> List[Tuple[int, int]]:
    """Contiguous ``(start, stop)`` ranges covering ``[0, n_rows)``."""
    if partition_rows <= 0:
        raise FrameError("partition_rows must be positive")
    if n_rows == 0:
        return [(0, 0)]
    return [(start, min(start + partition_rows, n_rows))
            for start in range(0, n_rows, partition_rows)]


# --------------------------------------------------------------------------- #
# CSV scans
# --------------------------------------------------------------------------- #
def _scan_partitions(scan: ScannedFrame, offset: int) -> List[SourcePartition]:
    """Partition tasks of one layout scan, shifted to global *offset* rows."""
    columns = tuple(scan.columns)
    dtypes = scan.dtypes
    stamp = tuple(scan.file_stamp)
    return [SourcePartition(offset + start, offset + stop, _read_csv_slice,
                            (scan.path, byte_start, byte_stop, columns, dtypes,
                             stamp, scan.delimiter, stop - start),
                            prefix="read_csv_partition")
            for (byte_start, byte_stop), (start, stop)
            in zip(scan.byte_ranges, scan.boundaries)]


def _rechunk_scan(scan: ScannedFrame, chunk_rows: Optional[int],
                  budget_bytes: Optional[int],
                  concurrency: int) -> ScannedFrame:
    """Shrink a scan's chunking for an explicit budget/chunk-rows override.

    The scan's own chunking already satisfies the budget it was created
    with; only constrain further for settings the caller explicitly
    overrides (or a worker count the scan did not assume).  Anything else
    would silently override an explicit ``scan_csv(chunk_rows=...)`` choice
    and pay a needless full-file layout rescan.
    """
    target = scan.chunk_rows
    if chunk_rows is not None:
        target = min(target, chunk_rows)
    budget = budget_bytes if budget_bytes is not None else scan.budget_bytes
    if budget != scan.budget_bytes or concurrency != scan.budget_concurrency:
        target = min(target, scan.chunk_rows_for_budget(
            budget, concurrency=concurrency))
    if target < scan.chunk_rows:
        return scan.rechunk(target)
    return scan


class CsvSource:
    """A :class:`FrameSource` over one scanned CSV file.

    Absorbs the :class:`~repro.frame.io.ScannedFrame` layout scan: schema
    and row counts come from the scan metadata, partitions are lazy
    byte-range parse tasks, and ``capabilities.exact=False`` routes every
    reduction through the bounded-memory sketch finalizers.
    """

    def __init__(self, scan: ScannedFrame):
        if not isinstance(scan, ScannedFrame):
            raise FrameError("CsvSource expects a ScannedFrame (from scan_csv)")
        self._scan = scan

    @property
    def scan(self) -> ScannedFrame:
        """The underlying layout scan handle."""
        return self._scan

    @property
    def columns(self) -> List[str]:
        return self._scan.columns

    @property
    def dtypes(self) -> Dict[str, DType]:
        return self._scan.dtypes

    @property
    def n_rows(self) -> int:
        return self._scan.n_rows

    @property
    def capabilities(self) -> SourceCapabilities:
        return SourceCapabilities(exact=False, projection=True)

    def schema_preview(self) -> DataFrame:
        return self._scan.preview

    def fingerprint(self) -> str:
        return self._scan.fingerprint()

    def footprint_bytes(self) -> int:
        return self._scan.file_size

    def materialization_bytes(self) -> int:
        preview = self._scan.preview
        if not len(preview):
            return self._scan.file_size
        per_row = preview.memory_bytes() / len(preview)
        return int(per_row * self._scan.n_rows)

    def partitions(self) -> List[SourcePartition]:
        return _scan_partitions(self._scan, 0)

    def with_partitioning(self, chunk_rows: Optional[int] = None,
                          budget_bytes: Optional[int] = None,
                          concurrency: int = 1) -> "CsvSource":
        rechunked = _rechunk_scan(self._scan, chunk_rows, budget_bytes,
                                  concurrency)
        return self if rechunked is self._scan else CsvSource(rechunked)

    def to_frame(self) -> DataFrame:
        return self._scan.to_frame()

    def __repr__(self) -> str:
        return f"CsvSource({self._scan!r})"


class MultiFileCsvSource:
    """Several scanned CSV files concatenated into one logical frame.

    Built by ``repro.scan_csv`` from a list or glob of paths.  Every file
    gets its own quote-aware layout scan; the per-file chunk partitions are
    concatenated with shifted global row offsets, so the downstream pipeline
    sees one frame and never learns about file boundaries.  Dtypes are
    pinned to the first file's inference (plus user overrides) so all
    partitions agree on storage types; files whose header disagrees with
    the first file's columns are rejected up front.
    """

    def __init__(self, scans: Sequence[ScannedFrame]):
        scans = list(scans)
        if not scans:
            raise FrameError("MultiFileCsvSource requires at least one file")
        for scan in scans:
            if not isinstance(scan, ScannedFrame):
                raise FrameError("MultiFileCsvSource expects ScannedFrame parts")
            if scan.columns != scans[0].columns:
                raise FrameError(
                    f"CSV files disagree on columns: {scans[0].path!r} has "
                    f"{scans[0].columns} but {scan.path!r} has {scan.columns}")
            if scan.delimiter != scans[0].delimiter:
                raise FrameError("CSV files disagree on the delimiter")
        self._scans = scans

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def scan(cls, paths: Sequence[Union[str, os.PathLike]],
             chunk_rows: Optional[int] = None,
             budget_bytes: Optional[int] = None,
             dtypes: Optional[Dict[str, DType]] = None,
             inference_rows: int = 10_000,
             delimiter: str = ",") -> "MultiFileCsvSource":
        """Layout-scan every file, sharing the first file's inferred dtypes.

        The first file is scanned with normal preview inference (plus any
        user *dtypes* overrides); the resulting full dtype map is forced on
        every later file, so a column whose type is ambiguous in file N
        cannot silently diverge from file 1 and break partition merges.
        """
        if not paths:
            raise FrameError("scan_csv received an empty list of paths")
        first = _scan_csv_file(paths[0], chunk_rows=chunk_rows,
                                 budget_bytes=budget_bytes, dtypes=dtypes,
                                 inference_rows=inference_rows,
                                 delimiter=delimiter)
        shared_dtypes = first.dtypes
        rest = [_scan_csv_file(path, chunk_rows=chunk_rows,
                                 budget_bytes=budget_bytes,
                                 dtypes=shared_dtypes,
                                 inference_rows=inference_rows,
                                 delimiter=delimiter,
                                 validate_dtype_keys=False)
                for path in paths[1:]]
        return cls([first] + rest)

    # ------------------------------------------------------------------ #
    # Schema
    # ------------------------------------------------------------------ #
    @property
    def scans(self) -> List[ScannedFrame]:
        """The per-file layout scans, in concatenation order."""
        return list(self._scans)

    @property
    def paths(self) -> List[str]:
        """The file paths, in concatenation order."""
        return [scan.path for scan in self._scans]

    @property
    def columns(self) -> List[str]:
        return self._scans[0].columns

    @property
    def dtypes(self) -> Dict[str, DType]:
        return self._scans[0].dtypes

    @property
    def n_rows(self) -> int:
        return sum(scan.n_rows for scan in self._scans)

    @property
    def capabilities(self) -> SourceCapabilities:
        return SourceCapabilities(exact=False, projection=True)

    def schema_preview(self) -> DataFrame:
        return self._scans[0].preview

    def fingerprint(self) -> str:
        """Stable across processes while every file's stamp is unchanged."""
        return fingerprint_file_stamps(
            [(scan.path, scan.file_stamp[0], scan.file_stamp[1])
             for scan in self._scans])

    def footprint_bytes(self) -> int:
        return sum(scan.file_size for scan in self._scans)

    def materialization_bytes(self) -> int:
        return sum(CsvSource(scan).materialization_bytes()
                   for scan in self._scans)

    def partitions(self) -> List[SourcePartition]:
        parts: List[SourcePartition] = []
        offset = 0
        for scan in self._scans:
            parts.extend(_scan_partitions(scan, offset))
            offset += scan.n_rows
        return parts

    def with_partitioning(self, chunk_rows: Optional[int] = None,
                          budget_bytes: Optional[int] = None,
                          concurrency: int = 1) -> "MultiFileCsvSource":
        rechunked = [_rechunk_scan(scan, chunk_rows, budget_bytes, concurrency)
                     for scan in self._scans]
        if all(new is old for new, old in zip(rechunked, self._scans)):
            return self
        return MultiFileCsvSource(rechunked)

    def to_frame(self) -> DataFrame:
        """Materialize every file (escape hatch; needs the full memory)."""
        return concat_rows([scan.to_frame() for scan in self._scans])

    def __repr__(self) -> str:
        return (f"MultiFileCsvSource(files={len(self._scans)}, "
                f"rows={self.n_rows}, columns={self.columns})")


# --------------------------------------------------------------------------- #
# Adapters
# --------------------------------------------------------------------------- #
def expand_scan_paths(path: Union[str, os.PathLike, Sequence]) -> List[str]:
    """Resolve a ``scan_csv`` path argument into an explicit file list.

    Lists/tuples pass through; a string containing glob magic (``*``,
    ``?``, ``[``) expands to the sorted matches.  Raises when a glob
    matches nothing, so a typo cannot silently scan zero files.
    """
    if isinstance(path, (list, tuple)):
        return [str(item) for item in path]
    text = str(path)
    if glob_module.has_magic(text):
        matches = sorted(glob_module.glob(text))
        if not matches:
            raise FrameError(f"glob pattern {text!r} matched no files")
        return matches
    return [text]


def as_source(data: Any) -> FrameSource:
    """Adapt any supported EDA input onto the :class:`FrameSource` protocol.

    ``DataFrame`` becomes an :class:`InMemorySource`, a ``ScannedFrame``
    becomes a :class:`CsvSource`, and objects already satisfying the
    protocol (including custom sources) pass through unchanged.
    """
    if isinstance(data, DataFrame):
        return InMemorySource(data)
    if isinstance(data, ScannedFrame):
        return CsvSource(data)
    if isinstance(data, (InMemorySource, CsvSource, MultiFileCsvSource)):
        return data
    if isinstance(data, FrameSource):
        return data
    raise FrameError(
        "expected a repro.frame.DataFrame, a scan_csv handle or a "
        f"FrameSource implementation, got {type(data).__name__}")


__all__ = [
    "CsvSource",
    "FrameSource",
    "InMemorySource",
    "MultiFileCsvSource",
    "SourceCapabilities",
    "SourcePartition",
    "as_source",
    "expand_scan_paths",
]
