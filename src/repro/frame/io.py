"""CSV input/output for the columnar frame.

The reader performs two passes over the text: the first collects raw string
cells per column, the second infers a storage dtype per column and coerces.
This mirrors how the EDA tools in the paper ingest Kaggle CSV files.
"""

from __future__ import annotations

import csv
import io
import os
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.errors import FrameError
from repro.frame.column import Column
from repro.frame.dtypes import DType, coerce_values, infer_dtype
from repro.frame.frame import DataFrame

PathOrBuffer = Union[str, os.PathLike, io.TextIOBase]


def read_csv(path_or_buffer: PathOrBuffer,
             delimiter: str = ",",
             has_header: bool = True,
             column_names: Optional[Sequence[str]] = None,
             dtypes: Optional[Dict[str, DType]] = None,
             max_rows: Optional[int] = None) -> DataFrame:
    """Read a CSV file (or open text buffer) into a :class:`DataFrame`.

    Parameters
    ----------
    path_or_buffer:
        File path or an open text stream.
    delimiter:
        Field separator, ``","`` by default.
    has_header:
        Whether the first row contains column names.
    column_names:
        Explicit column names; required when ``has_header`` is False.
    dtypes:
        Optional per-column dtype overrides; other columns are inferred.
    max_rows:
        Read at most this many data rows (useful for previews).
    """
    if isinstance(path_or_buffer, (str, os.PathLike)):
        with open(path_or_buffer, "r", newline="", encoding="utf-8") as handle:
            return _read_csv_stream(handle, delimiter, has_header, column_names,
                                    dtypes, max_rows)
    return _read_csv_stream(path_or_buffer, delimiter, has_header, column_names,
                            dtypes, max_rows)


def _read_csv_stream(stream: io.TextIOBase,
                     delimiter: str,
                     has_header: bool,
                     column_names: Optional[Sequence[str]],
                     dtypes: Optional[Dict[str, DType]],
                     max_rows: Optional[int]) -> DataFrame:
    reader = csv.reader(stream, delimiter=delimiter)
    rows = iter(reader)

    names: List[str]
    if has_header:
        try:
            header = next(rows)
        except StopIteration:
            return DataFrame()
        names = [name.strip() for name in header]
    else:
        if column_names is None:
            raise FrameError("column_names is required when has_header is False")
        names = list(column_names)

    cells: List[List[str]] = [[] for _ in names]
    for row_number, row in enumerate(rows):
        if max_rows is not None and row_number >= max_rows:
            break
        if not row:
            continue
        if len(row) != len(names):
            row = _normalize_row(row, len(names))
        for column_index, cell in enumerate(row):
            cells[column_index].append(cell)

    overrides = dtypes or {}
    columns = []
    for name, raw_values in zip(names, cells):
        dtype = overrides.get(name, infer_dtype(raw_values))
        data, mask = coerce_values(raw_values, dtype)
        columns.append(Column(name, data, dtype, mask))
    return DataFrame(columns)


def _normalize_row(row: List[str], width: int) -> List[str]:
    """Pad or truncate a ragged CSV row to the header width."""
    if len(row) < width:
        return row + [""] * (width - len(row))
    return row[:width]


def write_csv(frame: DataFrame, path_or_buffer: PathOrBuffer,
              delimiter: str = ",", missing_token: str = "") -> None:
    """Write a :class:`DataFrame` to CSV.

    Missing values are written as *missing_token* (empty string by default)
    so a round-trip through :func:`read_csv` preserves missingness.
    """
    if isinstance(path_or_buffer, (str, os.PathLike)):
        with open(path_or_buffer, "w", newline="", encoding="utf-8") as handle:
            _write_csv_stream(frame, handle, delimiter, missing_token)
        return
    _write_csv_stream(frame, path_or_buffer, delimiter, missing_token)


def _write_csv_stream(frame: DataFrame, stream: io.TextIOBase,
                      delimiter: str, missing_token: str) -> None:
    writer = csv.writer(stream, delimiter=delimiter)
    writer.writerow(frame.columns)
    lists = frame.to_dict()
    names = frame.columns
    for index in range(len(frame)):
        row = []
        for name in names:
            value = lists[name][index]
            row.append(missing_token if value is None else _format_cell(value))
        writer.writerow(row)


def _format_cell(value: Any) -> str:
    """Format a scalar for CSV output."""
    if isinstance(value, float):
        if value != value:  # NaN
            return ""
        if value.is_integer():
            return str(int(value))
        return repr(value)
    if isinstance(value, np.datetime64):
        return str(value)
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)
