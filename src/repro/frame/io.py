"""CSV input/output for the columnar frame.

The eager reader (:func:`read_csv`) performs two passes over the text: the
first collects raw string cells per column, the second infers a storage dtype
per column and coerces.  This mirrors how the EDA tools in the paper ingest
Kaggle CSV files.

The streaming reader (:func:`scan_csv`) never materializes the file: it scans
the byte layout once (quote-aware, so embedded newlines inside quoted fields
are handled), infers dtypes from a bounded preview, and returns a
:class:`ScannedFrame` whose chunks are parsed lazily, one bounded row range
at a time.  The EDA layer accepts a ``ScannedFrame`` wherever it accepts a
``DataFrame`` and routes it through per-partition sketch reductions, which is
what makes ``plot`` / ``create_report`` work on CSVs larger than memory.
"""

from __future__ import annotations

import csv
import io
import os
import zlib
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.errors import ColumnNotFoundError, FrameError
from repro.frame.column import Column
from repro.frame.dtypes import (
    DType,
    coerce_values,
    encode_string_codes,
    infer_dtype,
)
from repro.frame.frame import DataFrame, concat_rows
from repro.utils import default_worker_count  # noqa: F401 - re-exported; the
# shared worker-count default lives in repro.utils so the graph and compute
# layers no longer depend on the I/O layer for it.

PathOrBuffer = Union[str, os.PathLike, io.TextIOBase]

#: Default number of rows per streamed chunk (mirrors the partition default).
DEFAULT_CHUNK_ROWS = 100_000

#: Default peak-memory budget for an out-of-core scan (bytes).
DEFAULT_BUDGET_BYTES = 128 * 1024 * 1024

#: Parsing a CSV chunk transiently holds the raw text plus per-cell python
#: strings (each with ~50 bytes of object header), which costs several times
#: the on-disk bytes; the budget-to-rows conversion multiplies the on-disk
#: row size by this factor.  Calibrated against tracemalloc peaks in
#: benchmarks/bench_outofcore.py.
PARSE_OVERHEAD_FACTOR = 12

#: Never shrink chunks below this many rows — per-chunk numpy work must still
#: dominate the python/scheduler overhead.
MIN_CHUNK_ROWS = 256

#: Bytes CRC-probed at the head and at the tail of every chunk's byte range
#: to form its content stamp.  Two probes per chunk keep stamping O(chunks)
#: instead of O(bytes); the trust model (an interior edit that touches
#: neither probe window goes unnoticed) is documented in
#: ``docs/architecture.md`` and backstopped by the per-chunk
#: ``expected_rows`` validation at parse time.
CHUNK_PROBE_BYTES = 4096


def read_csv(path_or_buffer: PathOrBuffer,
             delimiter: str = ",",
             has_header: bool = True,
             column_names: Optional[Sequence[str]] = None,
             dtypes: Optional[Dict[str, DType]] = None,
             max_rows: Optional[int] = None,
             lenient: bool = False,
             usecols: Optional[Sequence[str]] = None) -> DataFrame:
    """Read a CSV file (or open text buffer) into a :class:`DataFrame`.

    Parameters
    ----------
    path_or_buffer:
        File path or an open text stream.
    delimiter:
        Field separator, ``","`` by default.
    has_header:
        Whether the first row contains column names.
    column_names:
        Explicit column names; required when ``has_header`` is False.
    dtypes:
        Optional per-column dtype overrides; other columns are inferred.
        Keys are validated against the header — a key naming no column
        raises :class:`~repro.errors.ColumnNotFoundError` with a
        did-you-mean suggestion instead of being silently ignored.
    max_rows:
        Read at most this many data rows (useful for previews).
    lenient:
        When true, values that cannot be coerced to their (explicitly
        passed) dtype become missing instead of raising.
    usecols:
        Project the parse onto these columns only: cells of every other
        column are skipped *before* collection and dtype coercion, which is
        the hot-path saving the EDA planner's projection pushdown relies
        on.  Columns come back in file order regardless of the order given;
        unknown names raise with a did-you-mean suggestion.
    """
    if isinstance(path_or_buffer, (str, os.PathLike)):
        with open(path_or_buffer, "r", newline="", encoding="utf-8") as handle:
            return _read_csv_stream(handle, delimiter, has_header, column_names,
                                    dtypes, max_rows, lenient, usecols)
    return _read_csv_stream(path_or_buffer, delimiter, has_header, column_names,
                            dtypes, max_rows, lenient, usecols)


def _validate_known_columns(requested: Iterable[str],
                            names: Sequence[str]) -> None:
    """Raise (with a did-you-mean) when *requested* names a missing column."""
    known = set(names)
    for name in requested:
        if name not in known:
            raise ColumnNotFoundError(str(name), list(names))


def _read_csv_stream(stream: io.TextIOBase,
                     delimiter: str,
                     has_header: bool,
                     column_names: Optional[Sequence[str]],
                     dtypes: Optional[Dict[str, DType]],
                     max_rows: Optional[int],
                     lenient: bool = False,
                     usecols: Optional[Sequence[str]] = None) -> DataFrame:
    reader = csv.reader(stream, delimiter=delimiter)
    rows = iter(reader)

    names: List[str]
    if has_header:
        try:
            header = next(rows)
        except StopIteration:
            return DataFrame()
        names = [name.strip() for name in header]
    else:
        if column_names is None:
            raise FrameError("column_names is required when has_header is False")
        names = list(column_names)

    if dtypes:
        _validate_known_columns(dtypes, names)

    keep: Optional[List[int]] = None
    full_width = len(names)
    if usecols is not None:
        requested = set(usecols)
        if not requested:
            raise FrameError("usecols must name at least one column")
        _validate_known_columns(requested, names)
        # File order, so a projected parse always matches select() output.
        keep = [index for index, name in enumerate(names) if name in requested]
        names = [names[index] for index in keep]

    width = full_width if keep is None else keep[-1] + 1
    cells: List[List[str]] = [[] for _ in names]
    for row_number, row in enumerate(rows):
        if max_rows is not None and row_number >= max_rows:
            break
        if not row:
            continue
        if len(row) < width:
            row = _normalize_row(row, width)
        if keep is None:
            if len(row) > width:
                row = row[:width]
            for column_index, cell in enumerate(row):
                cells[column_index].append(cell)
        else:
            for position, column_index in enumerate(keep):
                cells[position].append(row[column_index])

    overrides = dtypes or {}
    columns = []
    for name, raw_values in zip(names, cells):
        dtype = overrides.get(name, infer_dtype(raw_values))
        data, mask = coerce_values(raw_values, dtype, lenient=lenient)
        if dtype is DType.STRING:
            # Emit dictionary codes directly at parse time: one np.unique
            # over the chunk's cells replaces every later per-row loop, and
            # the chunk travels (cache, sidecar, worker payloads) as int32
            # codes plus its per-chunk dictionary.
            codes, dictionary = encode_string_codes(data, mask)
            columns.append(Column.from_codes(name, codes, dictionary, mask))
            continue
        columns.append(Column(name, data, dtype, mask))
    return DataFrame(columns)


def _normalize_row(row: List[str], width: int) -> List[str]:
    """Pad or truncate a ragged CSV row to the header width."""
    if len(row) < width:
        return row + [""] * (width - len(row))
    return row[:width]


def write_csv(frame: DataFrame, path_or_buffer: PathOrBuffer,
              delimiter: str = ",", missing_token: str = "") -> None:
    """Write a :class:`DataFrame` to CSV.

    Missing values are written as *missing_token* (empty string by default)
    so a round-trip through :func:`read_csv` preserves missingness.
    """
    if isinstance(path_or_buffer, (str, os.PathLike)):
        with open(path_or_buffer, "w", newline="", encoding="utf-8") as handle:
            _write_csv_stream(frame, handle, delimiter, missing_token)
        return
    _write_csv_stream(frame, path_or_buffer, delimiter, missing_token)


def _write_csv_stream(frame: DataFrame, stream: io.TextIOBase,
                      delimiter: str, missing_token: str) -> None:
    writer = csv.writer(stream, delimiter=delimiter)
    writer.writerow(frame.columns)
    lists = frame.to_dict()
    names = frame.columns
    for index in range(len(frame)):
        row = []
        for name in names:
            value = lists[name][index]
            row.append(missing_token if value is None else _format_cell(value))
        writer.writerow(row)


def _format_cell(value: Any) -> str:
    """Format a scalar for CSV output."""
    if isinstance(value, float):
        if value != value:  # NaN
            return ""
        if value.is_integer():
            return str(int(value))
        return repr(value)
    if isinstance(value, np.datetime64):
        return str(value)
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


# --------------------------------------------------------------------------- #
# Streaming scan
# --------------------------------------------------------------------------- #
def _scan_records(handle, chunk_rows: int
                  ) -> Tuple[List[int], List[int], int, int, bool]:
    """Count CSV records from the handle's current byte position.

    A record ends only on a line where the cumulative quote count is even
    (``""`` escapes toggle twice, so parity is preserved); completely blank
    records are not counted, matching :func:`read_csv`.  A chunk boundary
    is committed every *chunk_rows* records.  Returns ``(boundary offsets,
    committed row counts, trailing rows past the last boundary, end byte,
    clean_eof)`` — *clean_eof* is False when the file ends inside an open
    quoted field (the trailing record is still counted, since
    ``csv.reader`` yields it), which makes the layout unsafe to extend
    in place by a later incremental refresh.
    """
    byte_offsets: List[int] = []
    row_counts: List[int] = []
    rows_in_chunk = 0
    quotes = 0
    record_blank = True
    for line in handle:
        quotes += line.count(b'"')
        if line.strip(b"\r\n"):
            record_blank = False
        if quotes % 2 == 1:
            continue                      # still inside a quoted field
        if not record_blank:
            rows_in_chunk += 1
            if rows_in_chunk == chunk_rows:
                byte_offsets.append(handle.tell())
                row_counts.append(rows_in_chunk)
                rows_in_chunk = 0
        record_blank = True
    clean_eof = quotes % 2 == 0
    if not clean_eof and not record_blank:
        # A final record whose quoted field is never closed: the csv
        # parser still yields it as a row, so count it — otherwise
        # n_rows disagrees with what the chunks actually parse.
        rows_in_chunk += 1
    return byte_offsets, row_counts, rows_in_chunk, handle.tell(), clean_eof


def _ranges_from_counts(byte_offsets: List[int], row_counts: List[int]
                        ) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]:
    """``(row boundaries, byte ranges)`` from committed offsets and counts."""
    byte_ranges = [(byte_offsets[index], byte_offsets[index + 1])
                   for index in range(len(row_counts))]
    boundaries: List[Tuple[int, int]] = []
    start = 0
    for count in row_counts:
        boundaries.append((start, start + count))
        start += count
    return boundaries, byte_ranges


def _scan_csv_layout(path: Union[str, os.PathLike], chunk_rows: int,
                     delimiter: str = ","
                     ) -> Tuple[List[str], List[Tuple[int, int]],
                                List[Tuple[int, int]], bool]:
    """One quote-aware pass over the file recording chunk byte boundaries.

    Returns ``(column names, row boundaries, byte ranges, clean_eof)``
    where every byte range starts and ends on a record boundary, so each
    chunk is independently parseable; *clean_eof* is False when the file
    ends inside an open quoted field (see :func:`_scan_records`).
    """
    if chunk_rows <= 0:
        raise FrameError("chunk_rows must be positive")
    with open(path, "rb") as handle:
        header_lines: List[bytes] = []
        quotes = 0
        for line in handle:
            header_lines.append(line)
            quotes += line.count(b'"')
            if quotes % 2 == 0:
                break
        header_text = b"".join(header_lines).decode("utf-8")
        header_rows = list(csv.reader(io.StringIO(header_text),
                                      delimiter=delimiter))
        if not header_rows:
            return [], [(0, 0)], [(handle.tell(), handle.tell())], True
        columns = [name.strip() for name in header_rows[0]]

        data_start = handle.tell()
        byte_offsets, row_counts, rows_in_chunk, end_of_file, clean_eof = \
            _scan_records(handle, chunk_rows)
    byte_offsets = [data_start] + byte_offsets
    if rows_in_chunk or not row_counts:
        byte_offsets.append(end_of_file)
        row_counts.append(rows_in_chunk)
    boundaries, byte_ranges = _ranges_from_counts(byte_offsets, row_counts)
    return columns, boundaries, byte_ranges, clean_eof


def compute_chunk_stamps(path: Union[str, os.PathLike],
                         byte_ranges: Sequence[Tuple[int, int]]
                         ) -> List[Tuple[int, int]]:
    """``(head_crc, tail_crc)`` content stamp of every chunk byte range.

    Each stamp CRC32s the first and last :data:`CHUNK_PROBE_BYTES` of the
    chunk's byte range (the whole range when it is smaller), so it is
    computable in O(chunks) regardless of file size.  These stamps replace
    the whole-file ``(size, mtime_ns)`` stamp in chunk-level cache keys:
    appending to a file leaves every old chunk's bytes — and therefore its
    stamp, its cross-call cache key, its zone-map entry and its binary
    sidecar — untouched, while a mutated prefix fails the CRC probes and
    invalidates exactly the chunks it touched.
    """
    stamps: List[Tuple[int, int]] = []
    with open(path, "rb") as handle:
        for start, stop in byte_ranges:
            span = max(0, int(stop) - int(start))
            probe = min(span, CHUNK_PROBE_BYTES)
            handle.seek(int(start))
            head = handle.read(probe)
            if span > probe:
                handle.seek(int(stop) - probe)
                tail = handle.read(probe)
            else:
                tail = head
            stamps.append((zlib.crc32(head), zlib.crc32(tail)))
    return stamps


def _estimate_csv_row_bytes(path: Union[str, os.PathLike],
                            probe_bytes: int = 64 * 1024) -> float:
    """Rough on-disk bytes per data row from a bounded probe of the file.

    Newlines embedded in quoted fields inflate the apparent record count,
    which only *under*-estimates the row size; the worker-aware re-check in
    ``ComputeContext.partitioned`` corrects any resulting over-sized chunks.
    """
    with open(path, "rb") as handle:
        handle.readline()                      # skip (first line of) header
        probe = handle.read(probe_bytes)
    records = probe.count(b"\n")
    if not records:
        return float(max(len(probe), 64))
    return len(probe) / records


def parse_csv_range(path: Union[str, os.PathLike], byte_start: int,
                    byte_stop: int, column_names: Sequence[str],
                    dtypes: Dict[str, DType],
                    delimiter: str = ",",
                    usecols: Optional[Sequence[str]] = None) -> DataFrame:
    """Parse one record-aligned byte range of a CSV file into a DataFrame.

    Parsing is lenient: the dtypes come from a bounded preview, so a value
    deep in the file that contradicts them becomes a missing cell rather
    than aborting the whole scan.  *usecols* projects the parse onto a
    column subset — the other columns' cells are skipped before collection
    and coercion (see :func:`read_csv`).
    """
    with open(path, "rb") as handle:
        handle.seek(byte_start)
        payload = handle.read(byte_stop - byte_start)
    return read_csv(io.StringIO(payload.decode("utf-8")), delimiter=delimiter,
                    has_header=False, column_names=list(column_names),
                    dtypes=dtypes, lenient=True, usecols=usecols)


class ScannedFrame:
    """A lazy, chunked view of an on-disk CSV file.

    Holds only metadata — column names, inferred dtypes, precomputed chunk
    boundaries and a bounded preview — never the parsed file.  Chunks are
    parsed on demand via :meth:`read_chunk` / :meth:`chunks`, and the EDA
    layer (``plot``, ``plot_correlation``, ``plot_missing``,
    ``create_report``) accepts a ``ScannedFrame`` directly, streaming it
    through mergeable sketches with peak memory proportional to the chunk
    size, not the file.
    """

    def __init__(self, path: str, columns: Sequence[str],
                 dtypes: Dict[str, DType],
                 boundaries: Sequence[Tuple[int, int]],
                 byte_ranges: Sequence[Tuple[int, int]],
                 file_stamp: Tuple[int, int], chunk_rows: int,
                 preview: DataFrame, delimiter: str = ",",
                 budget_bytes: int = DEFAULT_BUDGET_BYTES,
                 budget_concurrency: Optional[int] = None,
                 chunk_stamps: Optional[Sequence[Tuple[int, int]]] = None,
                 clean_eof: bool = True,
                 requested_chunk_rows: Optional[int] = None,
                 inference_rows: int = 10_000,
                 user_dtypes: Optional[Dict[str, DType]] = None,
                 validate_dtype_keys: bool = True):
        self.path = str(path)
        self._columns = list(columns)
        self._dtypes = dict(dtypes)
        self._boundaries = [tuple(boundary) for boundary in boundaries]
        self._byte_ranges = [tuple(byte_range) for byte_range in byte_ranges]
        self.file_stamp = tuple(file_stamp)
        self.chunk_rows = int(chunk_rows)
        self._preview = preview
        self.delimiter = delimiter
        #: The budget inputs the chunking already accounts for; consumers
        #: (ComputeContext) re-derive a chunk size only when theirs differ,
        #: so default-config EDA calls never pay a second layout pass.
        self.budget_bytes = int(budget_bytes)
        self.budget_concurrency = int(budget_concurrency
                                      if budget_concurrency is not None
                                      else default_worker_count())
        #: Per-chunk ``(head_crc, tail_crc)`` content stamps.  Captured at
        #: scan time — NOT lazily — so a later :meth:`refreshed` compares
        #: today's bytes against what the layout was actually computed
        #: from; stamping after a mutation would trust the mutated prefix.
        if chunk_stamps is not None:
            self._chunk_stamps: Optional[List[Tuple[int, int]]] = \
                [tuple(stamp) for stamp in chunk_stamps]
        else:
            try:
                self._chunk_stamps = compute_chunk_stamps(
                    self.path, self._byte_ranges)
            except OSError:
                # Hand-constructed handles over absent files (tests, remote
                # metadata) stay usable; refresh then falls back to rescan.
                self._chunk_stamps = None
        #: Whether the layout scan ended outside any quoted field; an open
        #: quote at EOF makes appended bytes part of the dangling record,
        #: so refresh must rescan instead of extending.
        self.clean_eof = bool(clean_eof)
        #: The scan_csv arguments that produced this handle, retained so
        #: :meth:`refreshed` can re-derive the layout under the exact same
        #: settings when extension is not safe.
        self._requested_chunk_rows = requested_chunk_rows
        self._inference_rows = int(inference_rows)
        self._user_dtypes = dict(user_dtypes) if user_dtypes else None
        self._validate_dtype_keys = bool(validate_dtype_keys)
        self._rechunks: Dict[int, "ScannedFrame"] = {}
        self._zone_map: Optional[Any] = None

    # ------------------------------------------------------------------ #
    # Metadata (no I/O)
    # ------------------------------------------------------------------ #
    @property
    def columns(self) -> List[str]:
        """Column names, known without parsing the file."""
        return list(self._columns)

    @property
    def dtypes(self) -> Dict[str, DType]:
        """Per-column storage dtypes inferred from the preview rows."""
        return dict(self._dtypes)

    @property
    def n_rows(self) -> int:
        """Total data rows, known from the layout scan."""
        return self._boundaries[-1][1] if self._boundaries else 0

    @property
    def n_chunks(self) -> int:
        """Number of precomputed chunks."""
        return len(self._boundaries)

    @property
    def boundaries(self) -> List[Tuple[int, int]]:
        """``(start, stop)`` global row range of each chunk."""
        return list(self._boundaries)

    @property
    def byte_ranges(self) -> List[Tuple[int, int]]:
        """``(start, stop)`` byte range of each chunk (record-aligned)."""
        return list(self._byte_ranges)

    @property
    def file_size(self) -> int:
        """On-disk size recorded at scan time (part of the cache stamp)."""
        return int(self.file_stamp[0])

    @property
    def chunk_stamps(self) -> List[Tuple[int, int]]:
        """Per-chunk ``(head_crc, tail_crc)`` content stamps.

        Captured when the layout was scanned; chunk ``index`` of this
        layout is keyed by ``chunk_stamps[index]`` in the cross-call cache,
        the zone-map sidecar and the parsed-chunk binary sidecar.  Computed
        on demand only for hand-built handles that skipped stamping.
        """
        if self._chunk_stamps is None:
            self._chunk_stamps = compute_chunk_stamps(self.path,
                                                      self._byte_ranges)
        return list(self._chunk_stamps)

    def chunk_stamp(self, index: int) -> Tuple[int, int]:
        """The content stamp of chunk *index*."""
        if self._chunk_stamps is None:
            self._chunk_stamps = compute_chunk_stamps(self.path,
                                                      self._byte_ranges)
        return tuple(self._chunk_stamps[index])

    def content_crc(self) -> int:
        """One CRC folding every chunk stamp — the file-level content probe.

        Changes whenever any chunk's head/tail probe changes, so the
        whole-file fingerprint below detects in-place rewrites even when
        they preserve both size and mtime_ns (the stamp-granularity hazard:
        editors restoring timestamps, appends within one mtime resolution).
        """
        crc = 0
        for head, tail in self.chunk_stamps:
            crc = zlib.crc32(f"{head}:{tail};".encode(), crc)
        return crc

    @property
    def preview(self) -> DataFrame:
        """The bounded preview frame dtypes and semantic types come from."""
        return self._preview

    def fingerprint(self) -> str:
        """Content fingerprint from ``(path, size, mtime_ns, content CRC)``.

        Stable across processes while the file is unchanged, so a scan
        handle used as a task argument produces cross-call cache keys that
        survive re-scanning (the same contract
        :class:`~repro.frame.source.CsvSource` exposes).  The trailing
        content CRC folds every per-chunk probe, so a same-size same-mtime
        rewrite still changes the fingerprint.
        """
        from repro.frame.fingerprint import fingerprint_file_stamps
        return fingerprint_file_stamps(
            [(self.path, self.file_stamp[0], self.file_stamp[1],
              self.content_crc())])

    def __repr__(self) -> str:
        return (f"ScannedFrame(path={self.path!r}, rows={self.n_rows}, "
                f"chunks={self.n_chunks}, columns={self._columns})")

    # ------------------------------------------------------------------ #
    # Filtered views (predicate pushdown)
    # ------------------------------------------------------------------ #
    def __getitem__(self, item):
        """Lazy filter building: ``scan["x"]`` and ``scan[scan["x"] > 0]``.

        A column name returns a
        :class:`~repro.frame.predicate.ColumnExpr` — a symbolic reference
        whose comparison operators build
        :class:`~repro.frame.predicate.Predicate` objects; indexing with a
        predicate returns a lazy
        :class:`~repro.frame.source.FilteredSource` over this scan.
        Neither operation reads a single data byte: the filter is pushed
        into the chunk parses (and zone-map chunk skipping) when the EDA
        layer plans over the result, instead of materializing the file
        here.
        """
        from repro.frame.predicate import ColumnExpr, Predicate
        if isinstance(item, str):
            if item not in self._columns:
                raise ColumnNotFoundError(
                    f"unknown column {item!r}; available: {self._columns}")
            return ColumnExpr(item)
        if isinstance(item, Predicate):
            from repro.frame.source import CsvSource, FilteredSource
            return FilteredSource(CsvSource(self), item)
        raise FrameError(
            f"a ScannedFrame accepts a column name or a Predicate, got "
            f"{type(item).__name__}; for row masks, read the file with "
            f"read_csv and filter the DataFrame")

    def __getattr__(self, name: str):
        """``scan.x`` as shorthand for ``scan["x"]`` (known columns only)."""
        if not name.startswith("_"):
            columns = self.__dict__.get("_columns") or []
            if name in columns:
                from repro.frame.predicate import ColumnExpr
                return ColumnExpr(name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    def zone_map(self):
        """The per-chunk zone map of this scan, building it if needed.

        The sidecar holds one entry per chunk byte range, each keyed by
        that chunk's ``(head_crc, tail_crc)`` content stamp
        (:mod:`repro.frame.zonemap`): only chunks whose entry is missing or
        whose stamp mismatches are parsed to compute their
        min/max/null/distinct statistics, and only those entries are
        written back.  After an append, the old chunks' entries survive
        verbatim and the build pays for the new chunks alone; a mutated
        chunk rebuilds individually.  Memoized on this handle.
        """
        from repro.frame.zonemap import (
            chunk_column_stats,
            chunk_key,
            decode_zone_entry,
            encode_zone_entry,
            load_zone_entries,
            save_zone_entries,
            zone_map_from_stats,
        )
        if self._zone_map is not None:
            return self._zone_map
        entries = load_zone_entries(self.path)
        stamps = self.chunk_stamps
        per_chunk: List[Dict[str, Tuple[Any, Any, int, int]]] = []
        fresh: Dict[str, Dict[str, Any]] = {}
        for index, byte_range in enumerate(self._byte_ranges):
            key = chunk_key(*byte_range)
            stats = decode_zone_entry(entries.get(key), stamps[index])
            if stats is None:
                stats = chunk_column_stats(self.read_chunk(index))
                fresh[key] = encode_zone_entry(stats, stamps[index])
            per_chunk.append(stats)
        if fresh:
            save_zone_entries(self.path, fresh)
        built = zone_map_from_stats(per_chunk, self.file_stamp,
                                    self.chunk_rows)
        self._zone_map = built
        return built

    # ------------------------------------------------------------------ #
    # Chunked access
    # ------------------------------------------------------------------ #
    def read_chunk(self, index: int) -> DataFrame:
        """Parse chunk *index* (its rows only) into a DataFrame.

        Delegates to the same slice parser the lazy partition tasks use
        (:func:`repro.frame.source._read_csv_slice`), so the
        parsed-rows-vs-layout-count validation has exactly one home.
        """
        from repro.frame.source import _read_csv_slice
        byte_start, byte_stop = self._byte_ranges[index]
        start, stop = self._boundaries[index]
        return _read_csv_slice(self.path, byte_start, byte_stop,
                               tuple(self._columns), self._dtypes,
                               self.chunk_stamp(index), self.delimiter,
                               expected_rows=stop - start)

    def chunks(self) -> Iterator[DataFrame]:
        """Yield every chunk in row order, one bounded DataFrame at a time."""
        for index in range(self.n_chunks):
            yield self.read_chunk(index)

    def head(self, n: int = 5) -> DataFrame:
        """The first *n* rows (served from the preview when possible)."""
        if n <= len(self._preview):
            return self._preview.head(n)
        return read_csv(self.path, delimiter=self.delimiter,
                        dtypes=self._dtypes, max_rows=n, lenient=True)

    def to_frame(self) -> DataFrame:
        """Materialize the whole file (escape hatch; needs the full memory)."""
        return concat_rows([chunk for chunk in self.chunks() if len(chunk)]
                           or [self.read_chunk(0)])

    # ------------------------------------------------------------------ #
    # Chunk-size control
    # ------------------------------------------------------------------ #
    def estimated_row_bytes(self) -> int:
        """Rough peak parse cost of one row (on-disk and in-memory)."""
        data_bytes = max(self.file_size - self._byte_ranges[0][0], 0) \
            if self._byte_ranges else 0
        csv_row = data_bytes / self.n_rows if self.n_rows else 64.0
        parsed_row = self._preview.memory_bytes() / len(self._preview) \
            if len(self._preview) else 64.0
        return max(1, int(csv_row * PARSE_OVERHEAD_FACTOR + parsed_row))

    def chunk_rows_for_budget(self, budget_bytes: int,
                              concurrency: int = 1) -> int:
        """Largest chunk size that keeps *concurrency* in-flight chunks
        within *budget_bytes* of estimated peak parse memory."""
        if budget_bytes <= 0:
            raise FrameError("budget_bytes must be positive")
        per_chunk = budget_bytes / max(1, concurrency)
        rows = int(per_chunk // self.estimated_row_bytes())
        return max(MIN_CHUNK_ROWS, rows)

    def rechunk(self, chunk_rows: int) -> "ScannedFrame":
        """Re-scan the byte layout with a different chunk granularity.

        The result is memoized per granularity on this handle: repeated EDA
        calls on the same ``ScannedFrame`` (the interactive-session pattern)
        must not pay a full-file layout pass each time — a warm-cache call
        would otherwise still re-read the whole file.
        """
        if chunk_rows == self.chunk_rows:
            return self
        cached = self._rechunks.get(chunk_rows)
        if cached is not None:
            return cached
        columns, boundaries, byte_ranges, clean_eof = _scan_csv_layout(
            self.path, chunk_rows, delimiter=self.delimiter)
        rechunked = ScannedFrame(self.path, columns, self._dtypes, boundaries,
                                 byte_ranges, self.file_stamp, chunk_rows,
                                 self._preview, delimiter=self.delimiter,
                                 budget_bytes=self.budget_bytes,
                                 budget_concurrency=self.budget_concurrency,
                                 clean_eof=clean_eof,
                                 requested_chunk_rows=self._requested_chunk_rows,
                                 inference_rows=self._inference_rows,
                                 user_dtypes=self._user_dtypes,
                                 validate_dtype_keys=self._validate_dtype_keys)
        self._rechunks[chunk_rows] = rechunked
        return rechunked

    # ------------------------------------------------------------------ #
    # Incremental refresh
    # ------------------------------------------------------------------ #
    def refreshed(self) -> "ScannedFrame":
        """Re-resolve this scan against the file's current on-disk state.

        Returns ``self`` (the same object) when the file's ``(size,
        mtime_ns)`` stamp is unchanged.  When the file *grew* and the old
        byte region still matches every per-chunk CRC probe — an append —
        the existing layout is extended from the last committed record
        boundary: the old chunks keep their byte ranges and content
        stamps, so their cross-call cache keys, zone-map entries and
        binary sidecars all stay valid, and only the appended bytes are
        layout-scanned and stamped.  Any other change (shrink, mutation,
        schema drift in the preview window, a layout that ended inside an
        open quote) falls back to a full rescan under the original
        ``scan_csv`` arguments.
        """
        try:
            file_stat = os.stat(self.path)
        except OSError:
            return self
        stamp = (int(file_stat.st_size), int(file_stat.st_mtime_ns))
        if stamp == self.file_stamp:
            return self
        if stamp[0] > self.file_stamp[0] and self._prefix_intact():
            extended = self._extend_layout(stamp)
            if extended is not None:
                return extended
        return _scan_csv_file(self.path,
                              chunk_rows=self._requested_chunk_rows,
                              budget_bytes=self.budget_bytes,
                              dtypes=self._user_dtypes,
                              inference_rows=self._inference_rows,
                              delimiter=self.delimiter,
                              validate_dtype_keys=self._validate_dtype_keys)

    def _prefix_intact(self) -> bool:
        """Whether the scanned byte region still holds exactly the old data.

        Extension is trusted only when (a) the old layout ended cleanly —
        no open quote at EOF and a record-terminating newline as the last
        scanned byte, so appended bytes start a fresh record — and (b)
        every chunk's head/tail CRC probe still matches what was captured
        at scan time, so a mutated-then-grown prefix rescans instead of
        extending over a stale layout.
        """
        if not self._columns or not self.clean_eof \
                or self._chunk_stamps is None or not self._byte_ranges:
            return False
        scanned_end = int(self._byte_ranges[-1][1])
        if scanned_end < 1:
            return False
        try:
            with open(self.path, "rb") as handle:
                handle.seek(scanned_end - 1)
                if handle.read(1) != b"\n":
                    return False
            return compute_chunk_stamps(self.path, self._byte_ranges) == \
                self._chunk_stamps
        except OSError:
            return False

    def _extend_layout(self, stamp: Tuple[int, int]
                       ) -> Optional["ScannedFrame"]:
        """Append-only layout extension; None when a full rescan is needed.

        Re-runs preview dtype inference over the grown file first: when the
        appended rows change any inferred column dtype (they entered the
        inference window), the chunks would disagree on storage types, so
        the caller rescans instead.  When the intact prefix already holds
        the full ``inference_rows`` window, the preview bytes are unchanged
        by construction and the old preview (and its dtypes) is reused —
        the refresh then reads only the appended tail plus the CRC probes.
        """
        scanned_end = int(self._byte_ranges[-1][1])
        try:
            if self.n_rows >= self._inference_rows:
                preview = self._preview
            else:
                preview, inferred = _scan_preview(
                    self.path, self._user_dtypes, self._inference_rows,
                    self.delimiter, self._validate_dtype_keys)
                new_dtypes = {name: inferred.get(name, DType.STRING)
                              for name in self._columns}
                if new_dtypes != self._dtypes:
                    return None
            with open(self.path, "rb") as handle:
                handle.seek(scanned_end)
                offsets, counts, trailing, end, clean_eof = \
                    _scan_records(handle, self.chunk_rows)
        except (OSError, FrameError, ColumnNotFoundError):
            return None
        byte_offsets = [scanned_end] + offsets
        row_counts = list(counts)
        if trailing:
            byte_offsets.append(end)
            row_counts.append(trailing)
        old_boundaries = list(self._boundaries)
        old_ranges = [tuple(byte_range) for byte_range in self._byte_ranges]
        old_stamps = [tuple(chunk) for chunk in self._chunk_stamps]
        if self.n_rows == 0:
            # The placeholder empty chunk of a zero-row scan is replaced by
            # the real appended chunks instead of lingering at index 0.
            old_boundaries, old_ranges, old_stamps = [], [], []
        row = old_boundaries[-1][1] if old_boundaries else 0
        boundaries = old_boundaries
        byte_ranges = old_ranges
        for index, count in enumerate(row_counts):
            boundaries.append((row, row + count))
            byte_ranges.append((byte_offsets[index], byte_offsets[index + 1]))
            row += count
        if not boundaries:
            boundaries = [(0, 0)]
            byte_ranges = [(scanned_end, scanned_end)]
        try:
            chunk_stamps = old_stamps + compute_chunk_stamps(
                self.path, byte_ranges[len(old_stamps):])
        except OSError:
            return None
        return ScannedFrame(self.path, self._columns, self._dtypes,
                            boundaries, byte_ranges, stamp, self.chunk_rows,
                            preview, delimiter=self.delimiter,
                            budget_bytes=self.budget_bytes,
                            budget_concurrency=self.budget_concurrency,
                            chunk_stamps=chunk_stamps, clean_eof=clean_eof,
                            requested_chunk_rows=self._requested_chunk_rows,
                            inference_rows=self._inference_rows,
                            user_dtypes=self._user_dtypes,
                            validate_dtype_keys=self._validate_dtype_keys)


def scan_csv(path: Union[str, os.PathLike, Sequence[Union[str, os.PathLike]]],
             chunk_rows: Optional[int] = None,
             budget_bytes: Optional[int] = None,
             dtypes: Optional[Dict[str, DType]] = None,
             inference_rows: int = 10_000,
             delimiter: str = ","):
    """Open one or more CSVs for out-of-core streaming without materializing.

    Each file is scanned once (I/O only, quote-aware) to precompute chunk
    boundaries — the paper's "precompute chunk sizes" stage applied to file
    input — and the first *inference_rows* rows are parsed to infer storage
    dtypes, which every chunk then shares.  Peak memory of any downstream
    consumer is bounded by the chunk size.

    A single path returns a :class:`ScannedFrame`.  A list of paths, or a
    glob pattern (``"data/part-*.csv"``), returns a
    :class:`~repro.frame.source.MultiFileCsvSource`: one logical frame
    concatenating the files in list (or sorted glob) order, with dtypes
    pinned to the first file's inference so every partition agrees.  Both
    handle types are accepted by every ``plot*`` / ``create_report`` entry
    point.

    Parameters
    ----------
    path:
        CSV file path (a header row is required), a list of such paths, or
        a glob pattern matching at least one file.
    chunk_rows:
        Rows per streamed chunk.  Defaults to :data:`DEFAULT_CHUNK_ROWS`,
        shrunk if needed so one chunk's estimated parse cost fits
        *budget_bytes*.
    budget_bytes:
        Peak-memory budget used to cap the chunk size
        (:data:`DEFAULT_BUDGET_BYTES` when omitted).
    dtypes:
        Optional per-column dtype overrides; other columns are inferred
        from the preview.  Values appearing only past the preview that do
        not fit the inferred dtype are treated as missing, so pass explicit
        dtypes for columns whose type is not visible early in the file.

        The layout scan assumes RFC 4180 quoting (quote characters appear
        only in quoted fields, doubled to escape) — what ``csv.writer``
        produces.  A stray unpaired quote inside an unquoted field desyncs
        the record counter; chunk parsing detects the mismatch and raises
        with a pointer to :func:`read_csv` rather than returning skewed
        statistics.
    inference_rows:
        Rows parsed up front for dtype inference and semantic-type
        detection.
    delimiter:
        Field separator.
    """
    import glob as glob_module

    if isinstance(path, (list, tuple)) or glob_module.has_magic(os.fspath(path)):
        from repro.frame.source import MultiFileCsvSource, expand_scan_paths
        # A glob pattern is remembered so refresh() can re-expand it and
        # absorb newly matching files as appended partitions; an explicit
        # list is a closed set and only its members are refreshed.
        pattern = None if isinstance(path, (list, tuple)) else os.fspath(path)
        return MultiFileCsvSource.scan(
            expand_scan_paths(path), chunk_rows=chunk_rows,
            budget_bytes=budget_bytes, dtypes=dtypes,
            inference_rows=inference_rows, delimiter=delimiter,
            pattern=pattern)
    return _scan_csv_file(path, chunk_rows=chunk_rows,
                          budget_bytes=budget_bytes, dtypes=dtypes,
                          inference_rows=inference_rows, delimiter=delimiter)


def _scan_csv_file(path: Union[str, os.PathLike],
                   chunk_rows: Optional[int] = None,
                   budget_bytes: Optional[int] = None,
                   dtypes: Optional[Dict[str, DType]] = None,
                   inference_rows: int = 10_000,
                   delimiter: str = ",",
                   validate_dtype_keys: bool = True) -> ScannedFrame:
    """Layout-scan a single CSV file (the single-path body of *scan_csv*).

    *validate_dtype_keys* is disabled by the multi-file scanner for files
    after the first: those receive file 1's complete dtype map, and a
    header mismatch there must surface as the multi-file "files disagree on
    columns" error, not as an unknown-dtype-key error.
    """
    requested_rows = chunk_rows if chunk_rows is not None else DEFAULT_CHUNK_ROWS
    if requested_rows <= 0:
        raise FrameError("chunk_rows must be positive")
    budget = budget_bytes if budget_bytes is not None else DEFAULT_BUDGET_BYTES
    if budget <= 0:
        raise FrameError("budget_bytes must be positive")

    preview, inferred = _scan_preview(path, dtypes, inference_rows, delimiter,
                                      validate_dtype_keys)

    file_stat = os.stat(path)
    file_stamp = (int(file_stat.st_size), int(file_stat.st_mtime_ns))

    # Cap the chunk size by the budget using cheap row-size estimates (the
    # parsed preview plus a 64 KiB on-disk probe), then scan the layout once
    # at the final granularity.  The formula deliberately mirrors
    # ScannedFrame.chunk_rows_for_budget with the default worker count, so
    # the worker-aware re-derivation in ComputeContext usually agrees and no
    # second layout pass is needed.
    parsed_row = preview.memory_bytes() / len(preview) if len(preview) else 64.0
    csv_row = _estimate_csv_row_bytes(path)
    row_cost = max(1.0, csv_row * PARSE_OVERHEAD_FACTOR + parsed_row)
    budget_rows = max(MIN_CHUNK_ROWS,
                      int(budget / default_worker_count() // row_cost))
    effective_rows = min(requested_rows, budget_rows)

    columns, boundaries, byte_ranges, clean_eof = _scan_csv_layout(
        path, effective_rows, delimiter=delimiter)
    column_dtypes = {name: inferred.get(name, DType.STRING) for name in columns}
    return ScannedFrame(str(path), columns, column_dtypes, boundaries,
                        byte_ranges, file_stamp, effective_rows, preview,
                        delimiter=delimiter, budget_bytes=budget,
                        clean_eof=clean_eof, requested_chunk_rows=chunk_rows,
                        inference_rows=inference_rows, user_dtypes=dtypes,
                        validate_dtype_keys=validate_dtype_keys)


def _scan_preview(path: Union[str, os.PathLike],
                  dtypes: Optional[Dict[str, DType]],
                  inference_rows: int,
                  delimiter: str,
                  validate_dtype_keys: bool) -> Tuple["DataFrame", Dict[str, DType]]:
    """Parse the preview rows and resolve inferred + overridden dtypes.

    Shared by the cold scan and by ``ScannedFrame.refreshed``: an
    append-extension must re-run the same inference over the grown file so
    it can detect appended rows changing a column's inferred dtype (in
    which case the refresh falls back to a full rescan).
    """
    preview = read_csv(path, delimiter=delimiter, max_rows=inference_rows)
    inferred = preview.dtypes
    if dtypes:
        # Mirror the config-key validation: a dtype override naming no
        # column raises with a did-you-mean instead of silently doing
        # nothing (the historical behaviour hid typos until the column's
        # inferred type diverged deep in the file).
        if validate_dtype_keys:
            _validate_known_columns(dtypes, preview.columns)
        inferred.update(dtypes)
        # Lenient like the chunk parser: explicit dtypes are the documented
        # remedy for late-typed columns, so early values that contradict
        # them must become missing, not abort the scan.  Restrict the map
        # to this file's own header: in the multi-file path, *dtypes* is
        # file 1's complete map and a header mismatch must be reported by
        # the multi-file constructor, not here.
        preview_columns = set(preview.columns)
        preview_dtypes = {name: dtype for name, dtype in inferred.items()
                          if name in preview_columns}
        preview = read_csv(path, delimiter=delimiter, dtypes=preview_dtypes,
                           max_rows=inference_rows, lenient=True)
    return preview, inferred
