"""Row-filter predicate IR: the unit of predicate pushdown.

Filtered EDA (``plot(df, "x", where=...)`` or ``scan[scan["x"] > 0]``)
compiles the user's filter into a tiny IR before any planning happens:

* :class:`Conjunct` — one ``column <op> literal`` comparison;
* :class:`Predicate` — the AND of one or more conjuncts.

The IR is deliberately minimal — a conjunction of single-column comparisons
against literals — because that is exactly the shape a storage layer can
exploit: each conjunct can be tested against per-chunk min/max statistics
(:mod:`repro.frame.zonemap`) to skip whole chunks, and the residual filter
runs inside the chunk-parse task on columns the parse was reading anyway.
Anything richer (OR, column-vs-column, arbitrary callables) is *unsupported
by pushdown* and handled by the API layer as an eager fallback filter.

Missing-value semantics are SQL-like: **a missing value never matches any
comparison**, including ``!=``.  This keeps filtered results independent of
whether the filter ran per-chunk during a scan or once over a materialized
frame.

For transport into task graphs the predicate flattens to a *spec*: a nested
tuple of plain scalars such as ``(("price", ">", 150000.0),)``.  Plain
tuples tokenize structurally in the graph layer, so a filtered parse task
gets a cache key and CSE token that differ from the unfiltered parse of the
same chunk by exactly the predicate — filtered and unfiltered runs share
nothing they should not, and identical filters share everything.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from datetime import date, datetime
from typing import Any, Callable, Dict, Iterable, List, Tuple, Union

import numpy as np

from repro.errors import FrameError
from repro.frame.dtypes import parse_datetime


class PredicateError(FrameError):
    """A filter expression cannot be compiled into the pushdown IR."""


#: Comparison operators the IR supports, mapped to their evaluators.
OPERATORS: Dict[str, Callable[[Any, Any], Any]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}

_LITERAL_TYPES = (bool, int, float, str, np.bool_, np.integer, np.floating,
                  datetime, date, np.datetime64)


def _normalize_literal(value: Any) -> Any:
    """Coerce numpy/datetime scalars to plain Python so specs stay
    picklable, tokenizable and stable across processes.

    Datetime literals (``datetime``, ``date``, ``numpy.datetime64``)
    normalize to their ISO-8601 second-precision string — a plain ``str``
    travels through task kwargs, cache keys and the zone-map planner
    unchanged, and every consumer that needs a real datetime revives it
    with :func:`repro.frame.dtypes.parse_datetime`.
    """
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.datetime64):
        if np.isnat(value):
            raise PredicateError("cannot compare against NaT; a missing "
                                 "value never matches any predicate")
        return str(value.astype("datetime64[s]"))
    if isinstance(value, datetime):        # before date: datetime IS a date
        return str(np.datetime64(value.replace(tzinfo=None), "s"))
    if isinstance(value, date):
        return str(np.datetime64(value, "s"))
    return value


@dataclass(frozen=True)
class Conjunct:
    """One ``column <op> literal`` comparison."""

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise PredicateError(
                f"unsupported comparison operator {self.op!r}; "
                f"supported: {sorted(OPERATORS)}")
        if not isinstance(self.column, str):
            raise PredicateError(
                f"predicate column must be a column name, got "
                f"{type(self.column).__name__}")
        if not isinstance(self.value, _LITERAL_TYPES):
            raise PredicateError(
                f"predicate literal must be a scalar "
                f"(bool/int/float/str), got {type(self.value).__name__}")
        object.__setattr__(self, "value", _normalize_literal(self.value))

    def spec(self) -> Tuple[str, str, Any]:
        """The flat, picklable transport form of this conjunct."""
        return (self.column, self.op, self.value)

    def mask(self, frame: Any) -> np.ndarray:
        """Boolean match mask over *frame*; missing values never match."""
        column = frame.column(self.column)
        present = column.notna()
        out = np.zeros(len(column), dtype=bool)
        if not present.any():
            return out
        if column.is_dictionary and isinstance(self.value, str) and \
                self.op in ("==", "!="):
            # Resolve the literal to a dictionary code once, then compare
            # int32 codes instead of per-row strings.  The dictionary is
            # sorted, so the lookup is a binary search.
            dictionary = column.dictionary
            position = int(np.searchsorted(dictionary, self.value)) \
                if dictionary.size else 0
            hit = position < dictionary.size and \
                dictionary[position] == self.value
            codes = column.codes
            if self.op == "==":
                if hit:
                    out[present] = codes[present] == np.int32(position)
            else:
                out[present] = codes[present] != np.int32(position) \
                    if hit else True
            return out
        values = column.to_numpy()[present]
        value = self.value
        if values.dtype.kind == "M" and not isinstance(value, np.datetime64):
            # Datetime literals are normalized to ISO strings in the spec;
            # numpy raises TypeError on datetime64-vs-str, so revive the
            # literal before comparing.
            revived = parse_datetime(value) if isinstance(value, str) else None
            if revived is None:
                raise PredicateError(
                    f"cannot compare datetime column {self.column!r} with "
                    f"{self.value!r}; pass a datetime, a numpy.datetime64 "
                    f"or an ISO date string")
            value = revived
        try:
            matched = OPERATORS[self.op](values, value)
        except TypeError as error:
            raise PredicateError(
                f"cannot compare column {self.column!r} with "
                f"{self.value!r}: {error}") from None
        out[present] = np.asarray(matched, dtype=bool)
        return out

    def __repr__(self) -> str:
        return f"({self.column} {self.op} {self.value!r})"


@dataclass(frozen=True)
class Predicate:
    """AND of one or more :class:`Conjunct` comparisons."""

    conjuncts: Tuple[Conjunct, ...]

    def __post_init__(self) -> None:
        if not self.conjuncts:
            raise PredicateError("a predicate needs at least one conjunct")

    @property
    def columns(self) -> List[str]:
        """Columns the predicate reads, in first-use order, deduplicated."""
        seen: List[str] = []
        for conjunct in self.conjuncts:
            if conjunct.column not in seen:
                seen.append(conjunct.column)
        return seen

    def spec(self) -> Tuple[Tuple[str, str, Any], ...]:
        """Nested plain-tuple form that travels inside task graphs."""
        return tuple(conjunct.spec() for conjunct in self.conjuncts)

    @classmethod
    def from_spec(cls, spec: Iterable[Tuple[str, str, Any]]) -> "Predicate":
        """Rebuild a predicate from its :meth:`spec` transport form."""
        return cls(tuple(Conjunct(*entry) for entry in spec))

    def mask(self, frame: Any) -> np.ndarray:
        """Boolean AND-mask over *frame* (missing values never match)."""
        out = self.conjuncts[0].mask(frame)
        for conjunct in self.conjuncts[1:]:
            out &= conjunct.mask(frame)
        return out

    def __and__(self, other: "Predicate") -> "Predicate":
        if not isinstance(other, Predicate):
            return NotImplemented
        return Predicate(self.conjuncts + other.conjuncts)

    def __repr__(self) -> str:
        return " & ".join(repr(conjunct) for conjunct in self.conjuncts)


class ColumnExpr:
    """A lazily referenced column of a scanned (not yet parsed) input.

    ``scan["price"]`` returns one of these instead of parsing the file; its
    comparison operators build :class:`Predicate` objects, so
    ``scan[scan["price"] > 100]`` describes a filtered scan without reading
    a single data byte.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _compare(self, op: str, other: Any) -> Predicate:
        return Predicate((Conjunct(self.name, op, other),))

    def __gt__(self, other: Any) -> Predicate:
        return self._compare(">", other)

    def __ge__(self, other: Any) -> Predicate:
        return self._compare(">=", other)

    def __lt__(self, other: Any) -> Predicate:
        return self._compare("<", other)

    def __le__(self, other: Any) -> Predicate:
        return self._compare("<=", other)

    def __eq__(self, other: Any) -> Predicate:  # type: ignore[override]
        return self._compare("==", other)

    def __ne__(self, other: Any) -> Predicate:  # type: ignore[override]
        return self._compare("!=", other)

    __hash__ = None  # type: ignore[assignment]  # expression object, not a value

    def __repr__(self) -> str:
        return f"ColumnExpr({self.name!r})"


WhereLike = Union[Predicate, Conjunct, tuple, list]


def compile_predicate(where: WhereLike) -> Predicate:
    """Compile a user-facing ``where=`` value into a :class:`Predicate`.

    Accepted shapes:

    * a :class:`Predicate` (e.g. built from ``scan["x"] > 0``) — returned
      as-is;
    * a :class:`Conjunct`;
    * one ``(column, op, literal)`` triple, e.g. ``("price", ">", 0)``;
    * an iterable of such triples, ANDed together.

    Anything else — callables, boolean arrays, OR-trees — raises
    :class:`PredicateError`; the API layer catches that and falls back to a
    full parse plus an eager filter (with a ``UserWarning``).
    """
    if isinstance(where, Predicate):
        return where
    if isinstance(where, Conjunct):
        return Predicate((where,))
    if isinstance(where, (tuple, list)) and where:
        entries = list(where)
        if len(entries) == 3 and isinstance(entries[0], str) and \
                isinstance(entries[1], str):
            entries = [tuple(entries)]
        conjuncts = []
        for entry in entries:
            if not (isinstance(entry, (tuple, list)) and len(entry) == 3):
                raise PredicateError(
                    f"expected (column, op, literal) triples, got {entry!r}")
            conjuncts.append(Conjunct(*entry))
        return Predicate(tuple(conjuncts))
    raise PredicateError(
        f"unsupported predicate shape: {type(where).__name__}; expected a "
        "Predicate, a (column, op, literal) triple, or a list of triples")


def apply_predicate_spec(frame: Any, spec: Iterable[Tuple[str, str, Any]]) -> Any:
    """Filter *frame* down to the rows matching a predicate *spec*.

    This is the function partition tasks call inside workers, so it takes
    the flat transport form rather than a :class:`Predicate` object.
    """
    return frame.filter(Predicate.from_spec(spec).mask(frame))


__all__ = [
    "ColumnExpr",
    "Conjunct",
    "OPERATORS",
    "Predicate",
    "PredicateError",
    "apply_predicate_spec",
    "compile_predicate",
]
