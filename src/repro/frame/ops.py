"""Relational-style helper operations over the columnar frame.

These are the operations the EDA compute layer needs beyond plain column
reductions: per-column value counts, two-column cross tabulation, and simple
grouped aggregation (used for categorical-vs-numerical bivariate plots).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DTypeError
from repro.frame.column import Column
from repro.frame.frame import DataFrame

#: Aggregations supported by :func:`groupby_aggregate`.
AGGREGATIONS: Dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda values: float(np.mean(values)) if values.size else float("nan"),
    "sum": lambda values: float(np.sum(values)) if values.size else 0.0,
    "min": lambda values: float(np.min(values)) if values.size else float("nan"),
    "max": lambda values: float(np.max(values)) if values.size else float("nan"),
    "median": lambda values: float(np.median(values)) if values.size else float("nan"),
    "std": lambda values: float(np.std(values, ddof=1)) if values.size > 1 else float("nan"),
    "count": lambda values: float(values.size),
}


def value_counts(frame: DataFrame, column: str,
                 top: Optional[int] = None) -> List[Tuple[Any, int]]:
    """Value counts of one column, optionally truncated to the *top* values."""
    pairs = frame.column(column).value_counts()
    if top is not None:
        return pairs[:top]
    return pairs


def crosstab(frame: DataFrame, row_column: str, col_column: str,
             max_row_categories: int = 20,
             max_col_categories: int = 20) -> Tuple[List[Any], List[Any], np.ndarray]:
    """Cross tabulation (contingency table) of two categorical columns.

    Returns ``(row_categories, col_categories, counts)`` where counts has
    shape ``(len(row_categories), len(col_categories))``.  Categories beyond
    the per-axis limits are collapsed into an ``"(other)"`` bucket, mirroring
    how EDA tools keep nested/stacked bar charts readable.
    """
    rows = frame.column(row_column)
    cols = frame.column(col_column)
    keep = rows.notna() & cols.notna()
    if rows.is_dictionary and cols.is_dictionary:
        # Vectorized path: both axes are dictionary-encoded, so tabulate
        # int32 codes with one fused bincount instead of per-row dict hits.
        row_codes = rows.codes[keep]
        col_codes = cols.codes[keep]
        row_categories, row_map = _top_codes(
            row_codes, rows.dictionary, max_row_categories)
        col_categories, col_map = _top_codes(
            col_codes, cols.dictionary, max_col_categories)
        counts = np.zeros((len(row_categories), len(col_categories)),
                          dtype=np.int64)
        if row_codes.size and counts.size:
            fused = (row_map[row_codes].astype(np.int64) * len(col_categories)
                     + col_map[col_codes])
            counts += np.bincount(
                fused, minlength=counts.size).reshape(counts.shape)
        return row_categories, col_categories, counts
    row_values = [str(value) for value in rows.filter(keep).to_list()]
    col_values = [str(value) for value in cols.filter(keep).to_list()]

    row_categories = _top_categories(row_values, max_row_categories)
    col_categories = _top_categories(col_values, max_col_categories)
    row_index = {category: i for i, category in enumerate(row_categories)}
    col_index = {category: i for i, category in enumerate(col_categories)}

    counts = np.zeros((len(row_categories), len(col_categories)), dtype=np.int64)
    other_row = row_index.get("(other)")
    other_col = col_index.get("(other)")
    for row_value, col_value in zip(row_values, col_values):
        i = row_index.get(row_value, other_row)
        j = col_index.get(col_value, other_col)
        if i is None or j is None:
            continue
        counts[i, j] += 1
    return row_categories, col_categories, counts


def _top_codes(codes: np.ndarray, dictionary: np.ndarray,
               limit: int) -> Tuple[List[str], np.ndarray]:
    """Codes-domain twin of :func:`_top_categories`.

    Returns the top categories (same ``(-count, value)`` ordering, same
    ``"(other)"`` bucket when truncated) plus an int64 lookup table mapping
    every dictionary code to its index in the category list.
    """
    tallies = np.bincount(codes, minlength=dictionary.size) \
        if codes.size else np.zeros(dictionary.size, dtype=np.int64)
    used = np.flatnonzero(tallies)
    ordered = sorted(used.tolist(),
                     key=lambda code: (-int(tallies[code]),
                                       str(dictionary[code])))
    top = ordered[:limit]
    categories = [str(dictionary[code]) for code in top]
    truncated = len(ordered) > limit
    if truncated:
        categories.append("(other)")
    table = np.full(max(dictionary.size, 1), len(categories) - 1 if truncated
                    else 0, dtype=np.int64)
    for index, code in enumerate(top):
        table[code] = index
    return categories, table


def _top_categories(values: Sequence[str], limit: int) -> List[str]:
    """The most frequent categories, with an ``"(other)"`` bucket if truncated."""
    counts: Dict[str, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    ordered = sorted(counts.items(), key=lambda pair: (-pair[1], pair[0]))
    categories = [category for category, _ in ordered[:limit]]
    if len(ordered) > limit:
        categories.append("(other)")
    return categories


def groupby_aggregate(frame: DataFrame, by: str, value: str,
                      aggregation: str = "mean",
                      max_groups: int = 20) -> List[Tuple[Any, float]]:
    """Aggregate a numeric column per category of another column.

    Returns ``(category, aggregated value)`` pairs for the *max_groups* most
    frequent categories.  Raises :class:`DTypeError` if the value column is
    not numeric or the aggregation name is unknown.
    """
    if aggregation not in AGGREGATIONS:
        raise DTypeError(
            f"unknown aggregation {aggregation!r}; "
            f"expected one of {sorted(AGGREGATIONS)}")
    group_column = frame.column(by)
    value_column = frame.column(value)
    if not value_column.dtype.is_numeric:
        raise DTypeError(f"column {value!r} must be numeric for aggregation")

    keep = group_column.notna() & value_column.notna()
    values = value_column.filter(keep).to_numpy(drop_missing=False).astype(np.float64)
    reducer = AGGREGATIONS[aggregation]
    if group_column.is_dictionary:
        return [(group, reducer(values[selector]))
                for group, selector in _code_groups(
                    group_column.codes[keep], group_column.dictionary,
                    max_groups)]

    groups = [str(item) for item in group_column.filter(keep).to_list()]
    buckets: Dict[str, List[float]] = {}
    for group, number in zip(groups, values):
        buckets.setdefault(group, []).append(float(number))
    frequency = sorted(buckets.items(), key=lambda pair: (-len(pair[1]), pair[0]))
    return [(group, reducer(np.asarray(numbers)))
            for group, numbers in frequency[:max_groups]]


def _code_groups(codes: np.ndarray, dictionary: np.ndarray,
                 max_groups: int) -> List[Tuple[str, np.ndarray]]:
    """The *max_groups* most frequent groups as ``(name, row selector)``.

    Order matches the bucket-dict path: by descending count, ties broken on
    the group name.  The boolean selector preserves row order inside each
    group, so float reductions see values in exactly the order the python
    loop appended them.
    """
    tallies = np.bincount(codes, minlength=dictionary.size) \
        if codes.size else np.zeros(dictionary.size, dtype=np.int64)
    used = np.flatnonzero(tallies)
    ordered = sorted(used.tolist(),
                     key=lambda code: (-int(tallies[code]),
                                       str(dictionary[code])))
    return [(str(dictionary[code]), codes == code)
            for code in ordered[:max_groups]]


def grouped_values(frame: DataFrame, by: str, value: str,
                   max_groups: int = 10) -> List[Tuple[str, np.ndarray]]:
    """Raw numeric values per category, for categorical box plots.

    Returns the *max_groups* most frequent categories with their numeric
    samples as float arrays (missing values dropped).
    """
    group_column = frame.column(by)
    value_column = frame.column(value)
    if not value_column.dtype.is_numeric:
        raise DTypeError(f"column {value!r} must be numeric")
    keep = group_column.notna() & value_column.notna()
    values = value_column.filter(keep).to_numpy().astype(np.float64)
    if group_column.is_dictionary:
        return [(group, values[selector])
                for group, selector in _code_groups(
                    group_column.codes[keep], group_column.dictionary,
                    max_groups)]
    groups = [str(item) for item in group_column.filter(keep).to_list()]
    buckets: Dict[str, List[float]] = {}
    for group, number in zip(groups, values):
        buckets.setdefault(group, []).append(float(number))
    frequency = sorted(buckets.items(), key=lambda pair: (-len(pair[1]), pair[0]))
    return [(group, np.asarray(numbers, dtype=np.float64))
            for group, numbers in frequency[:max_groups]]
