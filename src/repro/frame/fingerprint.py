"""Structural content fingerprints for arrays, Columns and DataFrames.

The cross-call intermediate cache (:mod:`repro.graph.cache`) needs a cheap,
deterministic way to decide that two EDA calls operate on "the same data".
Object identity is not enough — a user who reloads a CSV gets a new frame
with identical content — and full hashing would defeat the purpose on large
data.  The fingerprints here hash the *structure* (shape, dtype, column
names) plus the content, sampling the content above a size threshold:

* arrays up to :data:`FULL_HASH_BYTES` are hashed byte-for-byte;
* larger arrays combine a full-coverage CRC32 (cheap, covers every element,
  so any edit anywhere changes the fingerprint) with a head block, a tail
  block and a strided sample fed to SHA1; object (string) arrays feed item
  ``repr``s to the CRC instead of raw bytes.

Fingerprints are cached on the Column/DataFrame object.  Every public frame
operation returns a *new* object, so a mutated frame naturally gets a fresh
fingerprint; callers that mutate the underlying numpy buffers in place must
call ``invalidate_fingerprint()`` to bump the cached value.
"""

from __future__ import annotations

import hashlib
import zlib
from typing import TYPE_CHECKING, Iterable, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.frame.column import Column
    from repro.frame.frame import DataFrame

#: Arrays up to this many bytes are hashed in full; larger ones are sampled.
FULL_HASH_BYTES = 1 << 20

#: Bytes hashed from the head and from the tail of a large array.
_EDGE_BYTES = 1 << 16

#: Number of strided interior samples taken from a large array.
_STRIDE_SAMPLES = 1024


def fingerprint_array(array: np.ndarray) -> str:
    """Deterministic content fingerprint of a numpy array.

    Small arrays (including the boolean null masks) are hashed exactly;
    large arrays are sampled as described in the module docstring.  Object
    arrays (the STRING storage dtype) are hashed from item ``repr``s.
    """
    hasher = hashlib.sha1()
    hasher.update(str(array.dtype).encode())
    hasher.update(str(array.shape).encode())
    if array.dtype == object:
        _hash_object_array(hasher, array)
    else:
        _hash_numeric_array(hasher, array)
    return hasher.hexdigest()


def _hash_numeric_array(hasher: "hashlib._Hash", array: np.ndarray) -> None:
    contiguous = np.ascontiguousarray(array)
    if contiguous.nbytes <= FULL_HASH_BYTES:
        hasher.update(contiguous.tobytes())
        return
    # Full-buffer CRC32: an order of magnitude cheaper than SHA1 and enough
    # to guarantee that a single-cell interior edit changes the fingerprint.
    hasher.update(zlib.crc32(contiguous.reshape(-1).view(np.uint8)).to_bytes(4, "big"))
    flat = contiguous.reshape(-1)
    itemsize = max(flat.itemsize, 1)
    edge_items = max(_EDGE_BYTES // itemsize, 1)
    hasher.update(flat[:edge_items].tobytes())
    hasher.update(flat[-edge_items:].tobytes())
    step = max(flat.size // _STRIDE_SAMPLES, 1)
    hasher.update(flat[::step].tobytes())


def _hash_object_array(hasher: "hashlib._Hash", array: np.ndarray) -> None:
    flat = array.reshape(-1)
    if flat.size <= _STRIDE_SAMPLES * 4:
        for item in flat:
            hasher.update(repr(item).encode())
            hasher.update(b"\x00")
        return
    # Full-coverage CRC32 over every item so an edit anywhere changes the
    # fingerprint (the object analogue of the numeric full-buffer CRC; one
    # python-level pass, paid once per Column since fingerprints are cached).
    crc = 0
    for item in flat:
        crc = zlib.crc32(repr(item).encode(), crc)
    hasher.update(crc.to_bytes(4, "big"))
    # Plus SHA1 over sampled items for collision diversity beyond 32 bits.
    step = max(flat.size // _STRIDE_SAMPLES, 1)
    head = range(min(flat.size, 256))
    tail = range(max(flat.size - 256, 0), flat.size)
    interior = range(0, flat.size, step)
    for index in sorted(set(head) | set(tail) | set(interior)):
        hasher.update(repr(flat[index]).encode())
        hasher.update(b"\x00")


def fingerprint_column(column: "Column") -> str:
    """Fingerprint of one Column: name, dtype, length, data and null mask."""
    hasher = hashlib.sha1()
    hasher.update(column.name.encode())
    hasher.update(column.dtype.value.encode())
    hasher.update(str(len(column)).encode())
    hasher.update(fingerprint_array(column.data).encode())
    hasher.update(fingerprint_array(column.mask).encode())
    return hasher.hexdigest()


def fingerprint_file_stamps(stamps: Iterable[Tuple]) -> str:
    """Fingerprint of on-disk inputs from per-file stamp tuples.

    Each stamp is ``(path, size, mtime_ns, *extra)`` where the optional
    extra elements are integers — the CSV scans append a content CRC drawn
    from their per-chunk probes, so even an in-place rewrite that preserves
    both size and mtime_ns (an editor restoring timestamps, or appends
    inside one mtime resolution) still changes the fingerprint.

    File-backed frame sources (:mod:`repro.frame.source`) identify their
    content by these stamps instead of reading the bytes: the fingerprint
    is stable across processes and sessions while every file is unchanged —
    which is what keeps cross-call cache keys warm over re-scans.  The
    order of *stamps* is significant: the same files concatenated in a
    different order are a different logical frame.
    """
    hasher = hashlib.sha1()
    for stamp in stamps:
        path, *numbers = stamp
        hasher.update(str(path).encode())
        hasher.update(b"\x00")
        for number in numbers:
            hasher.update(str(int(number)).encode())
            hasher.update(b"\x00")
    return hasher.hexdigest()


def fingerprint_frame(frame: "DataFrame") -> str:
    """Fingerprint of a DataFrame: shape plus every column's fingerprint."""
    hasher = hashlib.sha1()
    hasher.update(str(frame.shape).encode())
    for name in frame.columns:
        hasher.update(name.encode())
        hasher.update(b"\x00")
        hasher.update(frame.column(name).fingerprint().encode())
    return hasher.hexdigest()
