"""The Column type: a typed 1-D array with an explicit null mask."""

from __future__ import annotations

import math
import operator
import sys
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import DTypeError, FrameError
from repro.frame.dtypes import (
    DType,
    coerce_values,
    decode_string_codes,
    encode_string_codes,
    from_numpy,
    infer_dtype,
)


class Column:
    """A single named, typed column with missing-value support.

    Values are stored in a numpy array (``data``) and missingness in a boolean
    array of the same length (``mask``; True means missing).  All reduction
    methods skip missing values.

    STRING columns built through coercion (lists, inferred numpy arrays, the
    CSV parse) additionally carry a *dictionary encoding*: ``int32`` codes
    into a sorted unique-values array, with ``-1`` in missing slots.  The
    codes are the canonical storage — categorical kernels, the binary
    sidecar and pickled worker payloads all work on them — while ``data``
    stays available as a lazily decoded object-array view, so code that
    predates the encoding keeps working unchanged.

    Columns are immutable from the caller's perspective: every operation
    returns a new :class:`Column` and never mutates ``data`` in place.
    """

    __slots__ = ("name", "_data", "mask", "dtype", "_fingerprint",
                 "_codes", "_dictionary", "_memory_bytes")

    def __init__(self, name: str, values: Union[Sequence[Any], np.ndarray],
                 dtype: Optional[DType] = None,
                 mask: Optional[np.ndarray] = None):
        self.name = str(name)
        self._codes: Optional[np.ndarray] = None
        self._dictionary: Optional[np.ndarray] = None
        self._memory_bytes: Optional[int] = None
        coerced = True
        if isinstance(values, np.ndarray) and dtype is None and mask is None:
            data, inferred_mask, inferred_dtype = from_numpy(values)
            self.data = data
            self.mask = inferred_mask
            self.dtype = inferred_dtype
        elif isinstance(values, np.ndarray) and dtype is not None and mask is not None:
            if values.shape != mask.shape:
                raise FrameError("data and mask must have the same shape")
            # Adoption path: internal callers hand over storage they already
            # validated; stays on the object carrier for strings (encode via
            # :meth:`dictionary_encode` when the codes are worth having).
            coerced = False
            self.data = values
            self.mask = mask.astype(np.bool_)
            self.dtype = dtype
        else:
            values_list = list(values)
            resolved_dtype = dtype if dtype is not None else infer_dtype(values_list)
            data, inferred_mask = coerce_values(values_list, resolved_dtype)
            if mask is not None:
                inferred_mask = inferred_mask | np.asarray(mask, dtype=np.bool_)
            self.data = data
            self.mask = inferred_mask
            self.dtype = resolved_dtype
        if self.dtype is DType.FLOAT:
            # NaN and the mask must agree so float reductions stay consistent.
            self.mask = self.mask | np.isnan(self.data)
        if coerced and self.dtype is DType.STRING:
            self._codes, self._dictionary = encode_string_codes(self._data,
                                                                self.mask)
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Storage access (dictionary encoding)
    # ------------------------------------------------------------------ #
    @property
    def data(self) -> np.ndarray:
        """The values array; decoded on demand for dictionary columns."""
        if self._data is None:
            self._data = decode_string_codes(self._codes, self._dictionary)
        return self._data

    @data.setter
    def data(self, value: np.ndarray) -> None:
        self._data = value

    @property
    def codes(self) -> Optional[np.ndarray]:
        """``int32`` dictionary codes (``-1`` = missing), or None."""
        return self._codes

    @property
    def dictionary(self) -> Optional[np.ndarray]:
        """Sorted unique present values (object array of str), or None."""
        return self._dictionary

    @property
    def is_dictionary(self) -> bool:
        """Whether this column carries the dictionary encoding."""
        return self._codes is not None

    def dictionary_encode(self) -> "Column":
        """This column carried as codes + dictionary (no-op when it already
        is, or when the dtype is not STRING)."""
        if self.dtype is not DType.STRING or self._codes is not None:
            return self
        codes, dictionary = encode_string_codes(self.data, self.mask)
        return Column.from_codes(self.name, codes, dictionary, mask=self.mask)

    @classmethod
    def from_codes(cls, name: str, codes: np.ndarray, dictionary: np.ndarray,
                   mask: Optional[np.ndarray] = None) -> "Column":
        """Build a STRING column directly from its dictionary encoding.

        *codes* index into *dictionary* with ``-1`` marking missing slots;
        when *mask* is omitted it is derived from the negative codes.  The
        object-array view is not materialized until someone reads ``data``.
        """
        column = object.__new__(cls)
        column.name = str(name)
        codes = np.asarray(codes, dtype=np.int32)
        column._codes = codes
        column._dictionary = np.asarray(dictionary, dtype=object)
        column.mask = (codes < 0) if mask is None \
            else np.asarray(mask, dtype=np.bool_)
        column.dtype = DType.STRING
        column._data = None
        column._fingerprint = None
        column._memory_bytes = None
        return column

    def _take_rows(self, indexer: Union[slice, np.ndarray]) -> "Column":
        """Row subset preserving the dictionary encoding when present."""
        if self._codes is not None:
            return Column.from_codes(self.name, self._codes[indexer],
                                     self._dictionary, self.mask[indexer])
        return Column(self.name, self.data[indexer], self.dtype,
                      self.mask[indexer])

    # ------------------------------------------------------------------ #
    # Pickling: encoded columns ship codes + dictionary, never the decoded
    # object array — this is what shrinks process/remote worker payloads.
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> Dict[str, Any]:
        state: Dict[str, Any] = {"name": self.name, "mask": self.mask,
                                 "dtype": self.dtype}
        if self._codes is not None:
            state["codes"] = np.ascontiguousarray(self._codes)
            state["dictionary"] = self._dictionary
        else:
            state["data"] = np.ascontiguousarray(self.data)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.name = state["name"]
        self.mask = np.asarray(state["mask"], dtype=np.bool_)
        self.dtype = state["dtype"]
        self._fingerprint = None
        self._memory_bytes = None
        if "codes" in state:
            self._codes = state["codes"]
            self._dictionary = state["dictionary"]
            self._data = None
        else:
            self._codes = None
            self._dictionary = None
            self._data = state["data"]

    # ------------------------------------------------------------------ #
    # Basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.data.shape[0])

    def __iter__(self) -> Iterator[Any]:
        for index in range(len(self)):
            yield self[index]

    def __getitem__(self, item: Union[int, slice, np.ndarray]) -> Any:
        if isinstance(item, (int, np.integer)):
            if self.mask[item]:
                return None
            value = self.data[item]
            if isinstance(value, np.generic):
                return value.item()
            return value
        if isinstance(item, slice):
            return self._take_rows(item)
        return self._take_rows(np.asarray(item))

    def __repr__(self) -> str:
        return (f"Column(name={self.name!r}, dtype={self.dtype.value}, "
                f"length={len(self)}, missing={self.missing_count()})")

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return (self.name == other.name and self.dtype is other.dtype and
                len(self) == len(other) and
                bool(np.array_equal(self.mask, other.mask)) and
                self._values_equal(other))

    def __hash__(self) -> int:  # Columns are not hashable (mutable arrays inside)
        raise TypeError("Column objects are unhashable")

    # Ordering comparisons against a scalar produce element-wise boolean
    # masks (missing entries compare False), so ``df[df.x > 0]`` works on an
    # in-memory frame with the same missing-never-matches semantics the
    # pushed-down predicate IR applies inside scan parses.  ``==`` keeps its
    # whole-column structural meaning above, so only the four order
    # operators are element-wise; build a Predicate for pushable equality.
    def _compare(self, op: Callable[[Any, Any], Any], other: Any) -> np.ndarray:
        if isinstance(other, Column):
            return NotImplemented
        out = np.zeros(len(self), dtype=np.bool_)
        present = ~self.mask
        if self._codes is not None and isinstance(other, str):
            # Compare the (small) dictionary once, then gather per row.
            if self._dictionary.size:
                per_code = np.asarray(op(self._dictionary, other),
                                      dtype=np.bool_)
                out[present] = per_code[self._codes[present]]
            return out
        try:
            out[present] = op(self.data[present], other)
        except TypeError:
            raise FrameError(
                f"cannot compare column {self.name!r} "
                f"({self.dtype.value}) with {type(other).__name__}") from None
        return out

    def __gt__(self, other: Any) -> np.ndarray:
        return self._compare(operator.gt, other)

    def __ge__(self, other: Any) -> np.ndarray:
        return self._compare(operator.ge, other)

    def __lt__(self, other: Any) -> np.ndarray:
        return self._compare(operator.lt, other)

    def __le__(self, other: Any) -> np.ndarray:
        return self._compare(operator.le, other)

    def _values_equal(self, other: "Column") -> bool:
        valid = ~self.mask
        if self.dtype is DType.FLOAT:
            return bool(np.allclose(self.data[valid], other.data[valid], equal_nan=True))
        if self._codes is not None and other._codes is not None and \
                np.array_equal(self._dictionary, other._dictionary):
            return bool(np.array_equal(self._codes[valid], other._codes[valid]))
        return bool(np.array_equal(self.data[valid], other.data[valid]))

    # ------------------------------------------------------------------ #
    # Fingerprinting (cross-call cache support)
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """Structural content fingerprint used by the intermediate cache.

        Computed lazily and cached on the object.  Operations always return
        new Columns, so the cache never goes stale through the public API;
        call :meth:`invalidate_fingerprint` after mutating ``data`` or
        ``mask`` in place.
        """
        if self._fingerprint is None:
            from repro.frame.fingerprint import fingerprint_column
            self._fingerprint = fingerprint_column(self)
        return self._fingerprint

    def invalidate_fingerprint(self) -> None:
        """Drop the cached fingerprint after an in-place buffer mutation."""
        self._fingerprint = None
        self._memory_bytes = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def rename(self, name: str) -> "Column":
        """Return a copy of this column under a new name (data is shared)."""
        if self._codes is not None:
            renamed = Column.from_codes(name, self._codes, self._dictionary,
                                        self.mask)
            renamed._data = self._data
            return renamed
        return Column(name, self.data, self.dtype, self.mask)

    @classmethod
    def from_storage(cls, name: str, data: np.ndarray, dtype: DType,
                     mask: np.ndarray) -> "Column":
        """Adopt pre-validated storage buffers without constructor checks.

        The binary chunk sidecar (:mod:`repro.frame.sidecar`) decodes
        buffers that already hold the constructor's invariants — the data
        was coerced to *dtype* before it was spilled, and the FLOAT
        NaN/mask reconciliation happened then too.  Re-running the
        constructor would copy the mask and rescan for NaNs, defeating the
        zero-copy ``numpy.memmap`` load; like :meth:`slice_view`, this
        bypasses it.  The buffers may be read-only (memmap/frombuffer):
        columns never mutate them in place.
        """
        column = object.__new__(cls)
        column.name = str(name)
        column._codes = None
        column._dictionary = None
        column.data = data
        column.mask = mask
        column.dtype = dtype
        column._fingerprint = None
        column._memory_bytes = None
        return column

    def slice_view(self, start: int, stop: int) -> "Column":
        """Zero-copy row slice sharing this column's buffers.

        Skips the constructor's re-validation (the NaN/mask reconciliation
        for FLOAT columns allocates a fresh mask array); a constructed
        Column already holds that invariant and numpy basic slicing
        preserves it, so partition slicing — the hottest in-memory graph
        task — allocates nothing proportional to the slice.
        """
        view = object.__new__(Column)
        view.name = self.name
        if self._codes is not None:
            view._codes = self._codes[start:stop]
            view._dictionary = self._dictionary
            view._data = None if self._data is None else self._data[start:stop]
        else:
            view._codes = None
            view._dictionary = None
            view._data = self.data[start:stop]
        view.mask = self.mask[start:stop]
        view.dtype = self.dtype
        view._fingerprint = None
        view._memory_bytes = None
        return view

    def copy(self) -> "Column":
        """Return a deep copy of this column."""
        if self._codes is not None:
            return Column.from_codes(self.name, self._codes.copy(),
                                     self._dictionary, self.mask.copy())
        return Column(self.name, self.data.copy(), self.dtype, self.mask.copy())

    def astype(self, dtype: DType) -> "Column":
        """Cast this column to another storage dtype.

        Missing entries stay missing.  Raises :class:`DTypeError` when a
        non-missing value cannot be represented in the target dtype.
        """
        if dtype is self.dtype:
            return self
        values = [None if self.mask[i] else self[i] for i in range(len(self))]
        data, mask = coerce_values(values, dtype)
        column = Column(self.name, data, dtype, mask)
        return column.dictionary_encode() if dtype is DType.STRING else column

    # ------------------------------------------------------------------ #
    # Missing values
    # ------------------------------------------------------------------ #
    def isna(self) -> np.ndarray:
        """Boolean array, True where the value is missing."""
        return self.mask.copy()

    def notna(self) -> np.ndarray:
        """Boolean array, True where the value is present."""
        return ~self.mask

    def missing_count(self) -> int:
        """Number of missing values."""
        return int(self.mask.sum())

    def missing_rate(self) -> float:
        """Fraction of missing values; 0.0 for an empty column."""
        if len(self) == 0:
            return 0.0
        return self.missing_count() / len(self)

    def dropna(self) -> "Column":
        """Return a column containing only the present values."""
        return self._take_rows(~self.mask)

    def fillna(self, value: Any) -> "Column":
        """Return a column with missing entries replaced by *value*."""
        filled = [value if self.mask[i] else self[i] for i in range(len(self))]
        return Column(self.name, filled, dtype=None)

    # ------------------------------------------------------------------ #
    # Value access
    # ------------------------------------------------------------------ #
    def to_numpy(self, drop_missing: bool = False) -> np.ndarray:
        """Return the underlying values as a numpy array.

        When ``drop_missing`` is True the result only contains present
        values; otherwise missing slots contain the dtype's null sentinel
        (NaN for floats).
        """
        if drop_missing:
            return self.data[~self.mask].copy()
        if self.dtype is DType.FLOAT:
            data = self.data.copy()
            data[self.mask] = np.nan
            return data
        return self.data.copy()

    def to_list(self) -> List[Any]:
        """Return the column as a list of python scalars, None where missing."""
        return [self[i] for i in range(len(self))]

    def take(self, indices: Sequence[int]) -> "Column":
        """Return the rows selected by integer positions."""
        return self._take_rows(np.asarray(indices, dtype=np.int64))

    def filter(self, predicate: np.ndarray) -> "Column":
        """Return the rows where the boolean *predicate* array is True."""
        keep = np.asarray(predicate, dtype=np.bool_)
        if keep.shape[0] != len(self):
            raise FrameError("predicate length does not match column length")
        return self._take_rows(keep)

    def head(self, n: int = 5) -> "Column":
        """Return the first *n* rows."""
        return self[:n]

    def map(self, func: Callable[[Any], Any]) -> "Column":
        """Apply a python function to each present value (missing stays missing)."""
        mapped = [None if self.mask[i] else func(self[i]) for i in range(len(self))]
        return Column(self.name, mapped)

    # ------------------------------------------------------------------ #
    # Reductions (missing values skipped)
    # ------------------------------------------------------------------ #
    def _numeric_values(self) -> np.ndarray:
        if not self.dtype.is_numeric:
            raise DTypeError(
                f"column {self.name!r} has dtype {self.dtype.value}, "
                "which does not support numeric reductions")
        return self.data[~self.mask].astype(np.float64)

    def count(self) -> int:
        """Number of present (non-missing) values."""
        return len(self) - self.missing_count()

    def sum(self) -> float:
        """Sum of present values (0.0 when all values are missing)."""
        values = self._numeric_values()
        return float(values.sum()) if values.size else 0.0

    def mean(self) -> float:
        """Mean of present values (NaN when all values are missing)."""
        values = self._numeric_values()
        return float(values.mean()) if values.size else float("nan")

    def std(self, ddof: int = 1) -> float:
        """Standard deviation of present values."""
        values = self._numeric_values()
        if values.size <= ddof:
            return float("nan")
        return float(values.std(ddof=ddof))

    def var(self, ddof: int = 1) -> float:
        """Variance of present values."""
        values = self._numeric_values()
        if values.size <= ddof:
            return float("nan")
        return float(values.var(ddof=ddof))

    def min(self) -> Any:
        """Minimum present value (None when all values are missing)."""
        return self._extreme(np.min)

    def max(self) -> Any:
        """Maximum present value (None when all values are missing)."""
        return self._extreme(np.max)

    def _extreme(self, reducer: Callable[[np.ndarray], Any]) -> Any:
        if self._codes is not None:
            used = self._codes[~self.mask]
            if used.size == 0:
                return None
            # The dictionary is sorted, so the extreme value is the one at
            # the extreme used code.
            code = used.min() if reducer is np.min else used.max()
            return str(self._dictionary[code])
        present = self.data[~self.mask]
        if present.size == 0:
            return None
        if self.dtype is DType.STRING:
            # numpy ufunc reductions do not support unicode arrays; the number
            # of present strings is modest enough for the builtin min/max.
            values = [str(value) for value in present.tolist()]
            return min(values) if reducer is np.min else max(values)
        value = reducer(present)
        if isinstance(value, np.generic):
            return value.item() if self.dtype is not DType.DATETIME else value
        return value

    def quantile(self, q: Union[float, Sequence[float]]) -> Union[float, np.ndarray]:
        """Quantile(s) of present values using linear interpolation."""
        values = self._numeric_values()
        if values.size == 0:
            if isinstance(q, (int, float)):
                return float("nan")
            return np.full(len(list(q)), np.nan)
        result = np.quantile(values, q)
        if isinstance(q, (int, float)):
            return float(result)
        return np.asarray(result, dtype=np.float64)

    def nunique(self) -> int:
        """Number of distinct present values."""
        if self._codes is not None:
            used = self._codes[~self.mask]
            return int(np.unique(used).size) if used.size else 0
        present = self.data[~self.mask]
        if present.size == 0:
            return 0
        if self.dtype is DType.STRING:
            return len(set(present.tolist()))
        return int(np.unique(present).size)

    def unique(self) -> List[Any]:
        """Distinct present values in first-seen order."""
        if self._codes is not None:
            used = self._codes[~self.mask]
            if used.size == 0:
                return []
            distinct, first_seen = np.unique(used, return_index=True)
            order = np.argsort(first_seen)
            return [str(self._dictionary[code]) for code in distinct[order]]
        seen: Dict[Any, None] = {}
        for index in range(len(self)):
            if self.mask[index]:
                continue
            seen.setdefault(self[index], None)
        return list(seen.keys())

    def value_counts(self, descending: bool = True) -> List[Tuple[Any, int]]:
        """Counts of distinct present values as ``(value, count)`` pairs."""
        if self._codes is not None:
            used = self._codes[~self.mask]
            if used.size == 0:
                return []
            tallies = np.bincount(used, minlength=self._dictionary.size)
            pairs = [(str(self._dictionary[code]), int(count))
                     for code, count in enumerate(tallies) if count]
            pairs.sort(key=lambda pair: (-pair[1], str(pair[0])) if descending
                       else (pair[1], str(pair[0])))
            return pairs
        present = self.data[~self.mask]
        if present.size == 0:
            return []
        if self.dtype is DType.STRING:
            uniques, counts = np.unique(present.astype(str), return_counts=True)
            pairs = [(str(value), int(count)) for value, count in zip(uniques, counts)]
        else:
            uniques, counts = np.unique(present, return_counts=True)
            pairs = []
            for value, count in zip(uniques, counts):
                scalar = value.item() if isinstance(value, np.generic) and \
                    self.dtype is not DType.DATETIME else value
                pairs.append((scalar, int(count)))
        pairs.sort(key=lambda pair: (-pair[1], str(pair[0])) if descending
                   else (pair[1], str(pair[0])))
        return pairs

    def mode(self) -> Any:
        """Most frequent present value (None when the column is all-missing)."""
        pairs = self.value_counts()
        return pairs[0][0] if pairs else None

    def skewness(self) -> float:
        """Sample skewness (Fisher-Pearson, bias-uncorrected) of present values."""
        values = self._numeric_values()
        if values.size < 3:
            return float("nan")
        centered = values - values.mean()
        second_moment = float(np.mean(centered ** 2))
        if second_moment == 0.0:
            return 0.0
        third_moment = float(np.mean(centered ** 3))
        return third_moment / second_moment ** 1.5

    def kurtosis(self) -> float:
        """Excess kurtosis of present values."""
        values = self._numeric_values()
        if values.size < 4:
            return float("nan")
        centered = values - values.mean()
        second_moment = float(np.mean(centered ** 2))
        if second_moment == 0.0:
            return 0.0
        fourth_moment = float(np.mean(centered ** 4))
        return fourth_moment / second_moment ** 2 - 3.0

    def infinite_count(self) -> int:
        """Number of +inf/-inf entries (always 0 for non-float dtypes)."""
        if self.dtype is not DType.FLOAT:
            return 0
        return int(np.isinf(self.data[~self.mask]).sum())

    def zeros_count(self) -> int:
        """Number of present values equal to zero (numeric dtypes only)."""
        if not self.dtype.is_numeric:
            return 0
        values = self._numeric_values()
        return int((values == 0).sum())

    def negatives_count(self) -> int:
        """Number of present values below zero (numeric dtypes only)."""
        if not self.dtype.is_numeric:
            return 0
        values = self._numeric_values()
        return int((values < 0).sum())

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the stored arrays.

        String columns count the actual python ``str`` objects (header
        included), not just the pointer array — the intermediate cache uses
        this to keep its byte budget honest for parsed CSV chunks.  For a
        dictionary-encoded column each distinct value is sized once
        (O(dictionary), not O(rows)); the residual object path still walks
        every row but memoizes the result, since the cache budget check
        runs on every store.
        """
        if self._memory_bytes is None:
            if self._codes is not None:
                payload = sum(sys.getsizeof(value)
                              for value in self._dictionary.tolist())
                self._memory_bytes = int(self._codes.nbytes + self.mask.nbytes
                                         + self._dictionary.nbytes + payload)
            elif self.dtype is DType.STRING:
                payload = sum(sys.getsizeof(value)
                              for value in self.data[~self.mask].tolist())
                self._memory_bytes = int(self.data.nbytes + self.mask.nbytes
                                         + payload)
            else:
                self._memory_bytes = int(self.data.nbytes + self.mask.nbytes)
        return self._memory_bytes

    def describe(self) -> Dict[str, Any]:
        """Summary statistics appropriate for the column dtype."""
        base: Dict[str, Any] = {
            "name": self.name,
            "dtype": self.dtype.value,
            "count": self.count(),
            "missing": self.missing_count(),
            "missing_rate": self.missing_rate(),
            "distinct": self.nunique(),
        }
        if self.dtype.is_numeric:
            quantiles = self.quantile([0.25, 0.5, 0.75])
            base.update({
                "mean": self.mean(),
                "std": self.std(),
                "min": self.min(),
                "q25": float(quantiles[0]),
                "median": float(quantiles[1]),
                "q75": float(quantiles[2]),
                "max": self.max(),
                "skewness": self.skewness(),
                "kurtosis": self.kurtosis(),
                "zeros": self.zeros_count(),
                "infinite": self.infinite_count(),
            })
        else:
            top = self.value_counts()[:1]
            base.update({
                "top": top[0][0] if top else None,
                "top_freq": top[0][1] if top else 0,
            })
        return base
