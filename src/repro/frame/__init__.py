"""Columnar DataFrame substrate.

The execution environment for this reproduction does not ship pandas, so the
package provides a small, self-contained columnar DataFrame built on numpy:

* :class:`~repro.frame.column.Column` — a typed 1-D array with a null mask.
* :class:`~repro.frame.frame.DataFrame` — an ordered collection of equal
  length columns with selection, filtering and summary operations.
* :func:`~repro.frame.io.read_csv` / :func:`~repro.frame.io.write_csv` — CSV
  input/output with dtype inference.
* :mod:`~repro.frame.fingerprint` — structural content fingerprints
  (shape, column names/dtypes, sampled content hash) that let the
  cross-call intermediate cache (:mod:`repro.graph.cache`) recognise "the
  same data" across separate EDA calls.
* :mod:`~repro.frame.source` — the :class:`~repro.frame.source.FrameSource`
  protocol unifying in-memory frames, single CSV scans and multi-file CSV
  datasets behind one partitioned, capability-declaring input contract.

The EDA layer (``repro.eda``) and the lazy execution engine (``repro.graph``)
are written against this substrate only.
"""

from repro.frame.dtypes import DType, infer_dtype
from repro.frame.column import Column
from repro.frame.fingerprint import fingerprint_array, fingerprint_column, fingerprint_frame
from repro.frame.frame import DataFrame, concat_rows
from repro.frame.io import ScannedFrame, read_csv, scan_csv, write_csv
from repro.frame.ops import crosstab, groupby_aggregate, value_counts
from repro.frame.predicate import (
    ColumnExpr,
    Conjunct,
    Predicate,
    compile_predicate,
)
from repro.frame.source import (
    CsvSource,
    FilteredSource,
    FrameSource,
    InMemorySource,
    MultiFileCsvSource,
    SourceCapabilities,
    SourcePartition,
    as_source,
    refresh_input,
)
from repro.frame.zonemap import (
    ZoneMap,
    build_zone_map,
    load_zone_entries,
    save_zone_entries,
    zone_map_from_stats,
)

__all__ = [
    "Column",
    "ColumnExpr",
    "Conjunct",
    "CsvSource",
    "DataFrame",
    "DType",
    "FilteredSource",
    "FrameSource",
    "InMemorySource",
    "MultiFileCsvSource",
    "Predicate",
    "ScannedFrame",
    "SourceCapabilities",
    "SourcePartition",
    "ZoneMap",
    "as_source",
    "build_zone_map",
    "compile_predicate",
    "load_zone_entries",
    "refresh_input",
    "save_zone_entries",
    "zone_map_from_stats",
    "concat_rows",
    "crosstab",
    "fingerprint_array",
    "fingerprint_column",
    "fingerprint_frame",
    "groupby_aggregate",
    "infer_dtype",
    "read_csv",
    "scan_csv",
    "value_counts",
    "write_csv",
]
