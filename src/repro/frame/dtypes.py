"""Storage dtypes and dtype inference for the columnar frame.

The frame recognises five storage dtypes, intentionally small but sufficient
for the EDA tasks in the paper:

* ``BOOL`` — stored as ``numpy.bool_`` with a separate null mask.
* ``INT`` — stored as ``numpy.int64`` with a separate null mask.
* ``FLOAT`` — stored as ``numpy.float64``; NaN doubles as the null marker but
  a mask is still kept so the behaviour is uniform across dtypes.
* ``STRING`` — stored as a numpy object array of ``str``.
* ``DATETIME`` — stored as ``numpy.datetime64[s]``.

Semantic types used by the EDA mapping rules (Numerical / Categorical) are a
separate concept and live in :mod:`repro.eda.dtypes`.
"""

from __future__ import annotations

import enum
import math
import re
from datetime import datetime, timezone
from typing import Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DTypeError

#: String tokens treated as missing when parsing text data (CSV, python lists).
MISSING_TOKENS = frozenset({"", "na", "n/a", "nan", "null", "none", "missing", "?"})

#: Accepted textual datetime formats, tried in order during inference.
#: Offset-aware values (``%z`` matches ``+02:00``, ``-0500`` and ``Z``) are
#: normalised to UTC and stored as naive ``datetime64[s]``.
DATETIME_FORMATS = (
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%dT%H:%M:%S",
    "%Y-%m-%d %H:%M:%S%z",
    "%Y-%m-%dT%H:%M:%S%z",
    "%Y-%m-%d",
    "%Y/%m/%d",
    "%m/%d/%Y",
    "%d-%m-%Y",
)

_BOOL_TRUE = frozenset({"true", "t", "yes", "y", "1"})
_BOOL_FALSE = frozenset({"false", "f", "no", "n", "0"})


class DType(enum.Enum):
    """Storage dtype of a :class:`repro.frame.Column`."""

    BOOL = "bool"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    DATETIME = "datetime"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this dtype support arithmetic reductions."""
        return self in (DType.BOOL, DType.INT, DType.FLOAT)

    @property
    def is_fixed_width(self) -> bool:
        """Whether storage is a fixed byte width per value (mmap-able).

        Everything but STRING: the chunk sidecar loads fixed-width columns
        zero-copy via ``numpy.memmap`` and uses an offset-array encoding
        for strings.
        """
        return self is not DType.STRING

    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used to store values of this storage dtype."""
        return _NUMPY_DTYPES[self]

    def null_value(self) -> Any:
        """The sentinel stored in masked slots for this dtype."""
        return _NULL_VALUES[self]


_NUMPY_DTYPES = {
    DType.BOOL: np.dtype(np.bool_),
    DType.INT: np.dtype(np.int64),
    DType.FLOAT: np.dtype(np.float64),
    DType.STRING: np.dtype(object),
    DType.DATETIME: np.dtype("datetime64[s]"),
}

_NULL_VALUES = {
    DType.BOOL: False,
    DType.INT: 0,
    DType.FLOAT: float("nan"),
    DType.STRING: "",
    DType.DATETIME: np.datetime64("1970-01-01", "s"),
}


def is_missing_scalar(value: Any) -> bool:
    """Return True if a raw python value should be treated as missing."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    if isinstance(value, np.floating) and np.isnan(value):
        return True
    if isinstance(value, str) and value.strip().lower() in MISSING_TOKENS:
        return True
    if isinstance(value, np.datetime64) and np.isnat(value):
        return True
    return False


def parse_bool(value: Any) -> Optional[bool]:
    """Parse a scalar as a boolean, returning None when it is not boolean-like."""
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, str):
        token = value.strip().lower()
        if token in _BOOL_TRUE:
            return True
        if token in _BOOL_FALSE:
            return False
    return None


#: Cheap prescreen matching every shape DATETIME_FORMATS can parse; strings
#: that cannot match skip the (expensive) strptime attempts entirely.
_DATETIME_CANDIDATE = re.compile(
    r"^\d{1,4}[-/]\d{1,2}[-/]\d{1,4}"
    r"((\s+|T)\d{1,2}:\d{1,2}:\d{1,2}(Z|[+-]\d{2}:?\d{2})?)?$")


def _to_naive_utc(value: datetime) -> datetime:
    """Collapse an offset-aware datetime onto the naive UTC timeline."""
    if value.tzinfo is not None:
        return value.astimezone(timezone.utc).replace(tzinfo=None)
    return value


def parse_datetime(value: Any) -> Optional[np.datetime64]:
    """Parse a scalar as a datetime, returning None when parsing fails.

    Offset-aware inputs — ``datetime`` objects with a ``tzinfo`` or strings
    with an ISO offset suffix (``...+02:00``, ``...-0500``, ``...Z``) — are
    converted to UTC before being stored as naive ``datetime64[s]``, so the
    same instant written with different offsets compares equal.
    """
    if isinstance(value, np.datetime64):
        return value.astype("datetime64[s]")
    if isinstance(value, datetime):
        return np.datetime64(_to_naive_utc(value), "s")
    if isinstance(value, str):
        text = value.strip()
        if not _DATETIME_CANDIDATE.match(text):
            return None
        for fmt in DATETIME_FORMATS:
            try:
                return np.datetime64(_to_naive_utc(datetime.strptime(text, fmt)), "s")
            except ValueError:
                continue
    return None


def _parse_number(value: Any) -> Optional[Tuple[float, bool]]:
    """Parse a scalar as a number.

    Returns ``(value, is_integral)`` or None when the scalar is not numeric.
    Booleans are deliberately *not* treated as numbers here so that boolean
    columns keep their own dtype.
    """
    if isinstance(value, (bool, np.bool_)):
        return None
    if isinstance(value, (int, np.integer)):
        return float(value), True
    if isinstance(value, (float, np.floating)):
        number = float(value)
        return number, float(number).is_integer() and abs(number) < 2 ** 53
    if isinstance(value, str):
        text = value.strip()
        if not text:
            return None
        try:
            number = float(text)
        except ValueError:
            return None
        is_integral = "." not in text and "e" not in text.lower() and \
            "inf" not in text.lower() and not math.isnan(number)
        return number, is_integral and float(number).is_integer()
    return None


def infer_dtype(values: Iterable[Any]) -> DType:
    """Infer the storage dtype of a sequence of raw python values.

    Missing markers are ignored during inference.  Mixed numeric content
    (ints and floats) infers FLOAT; anything containing non-parsable strings
    infers STRING.  An all-missing column infers FLOAT so it can hold NaN.
    """
    saw_bool = saw_int = saw_float = saw_datetime = False
    saw_any = False
    for value in values:
        if is_missing_scalar(value):
            continue
        saw_any = True
        # Numbers take precedence over booleans so "0"/"1" text columns stay
        # numeric; python bools are never treated as numbers by _parse_number.
        number = _parse_number(value)
        if number is not None:
            if number[1]:
                saw_int = True
            else:
                saw_float = True
            continue
        if parse_bool(value) is not None:
            saw_bool = True
            continue
        if parse_datetime(value) is not None:
            saw_datetime = True
            continue
        # A single non-parsable value makes the whole column STRING; no later
        # value can change that, so stop scanning (large text columns would
        # otherwise pay number/bool/datetime attempts on every cell).
        return DType.STRING
    if not saw_any:
        return DType.FLOAT
    if saw_datetime:
        if saw_bool or saw_int or saw_float:
            return DType.STRING
        return DType.DATETIME
    if saw_float:
        return DType.FLOAT
    if saw_int:
        if saw_bool:
            return DType.STRING
        return DType.INT
    if saw_bool:
        return DType.BOOL
    return DType.STRING


def coerce_values(values: Sequence[Any], dtype: DType,
                  lenient: bool = False) -> Tuple[np.ndarray, np.ndarray]:
    """Coerce raw python values into ``(data, mask)`` arrays for *dtype*.

    ``mask`` is True where the value is missing.  Raises
    :class:`repro.errors.DTypeError` when a non-missing value cannot be
    represented in the requested dtype — unless *lenient* is true, in which
    case such values are recorded as missing instead.  The streaming CSV
    scan parses chunks leniently: its dtypes come from a bounded preview, so
    a value contradicting the inferred dtype deep in a large file must
    degrade to a missing cell (as documented on ``scan_csv``), not abort a
    long-running scan.

    FLOAT, INT and STRING take a vectorized fast path (numpy parses the
    whole batch in C) and fall back to the exact per-scalar coercion the
    moment any value resists it, so the accepted inputs are identical either
    way — this is the hot loop of the chunked CSV scan.
    """
    fast = _coerce_fast(values, dtype)
    if fast is not None:
        return fast
    size = len(values)
    data = np.empty(size, dtype=dtype.numpy_dtype())
    mask = np.zeros(size, dtype=np.bool_)
    null = dtype.null_value()
    for index, value in enumerate(values):
        if is_missing_scalar(value):
            data[index] = null
            mask[index] = True
            continue
        if lenient:
            try:
                data[index] = _coerce_scalar(value, dtype)
            except (DTypeError, OverflowError):
                # OverflowError: a parsed python int too large for the int64
                # storage raises at numpy assignment, not inside the coercion
                # — it must still degrade to missing, not abort the scan.
                data[index] = null
                mask[index] = True
        else:
            data[index] = _coerce_scalar(value, dtype)
    return data, mask


def _coerce_fast(values: Sequence[Any],
                 dtype: DType) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Vectorized coercion for the common dtypes; None = use the slow path."""
    if dtype not in (DType.FLOAT, DType.INT, DType.STRING) or not len(values):
        return None
    mask = np.fromiter((is_missing_scalar(value) for value in values),
                       dtype=np.bool_, count=len(values))
    if dtype is DType.STRING:
        if not all(isinstance(value, str) for value in values):
            return None
        data = np.empty(len(values), dtype=object)
        data[:] = values
        if mask.any():
            data[mask] = ""
        return data, mask
    null_token = "nan" if dtype is DType.FLOAT else "0"
    cleaned = [null_token if missing else value
               for value, missing in zip(values, mask)]
    if not all(isinstance(value, str) for value in cleaned):
        return None
    if dtype is DType.INT and any("_" in value for value in cleaned):
        return None                    # numpy and int() disagree on "1_0"
    try:
        data = np.asarray(cleaned, dtype=dtype.numpy_dtype())
    except (ValueError, OverflowError):
        return None
    if dtype is DType.FLOAT and bool(np.isnan(data[~mask]).any()):
        return None                    # a non-missing cell parsed to NaN
    return data, mask


def _coerce_scalar(value: Any, dtype: DType) -> Any:
    """Coerce a single non-missing scalar to *dtype*, raising on failure."""
    if dtype is DType.BOOL:
        parsed_bool = parse_bool(value)
        if parsed_bool is None:
            raise DTypeError(f"cannot interpret {value!r} as bool")
        return parsed_bool
    if dtype is DType.INT:
        number = _parse_number(value)
        if number is None or not number[1]:
            parsed_bool = parse_bool(value)
            if parsed_bool is not None:
                return int(parsed_bool)
            raise DTypeError(f"cannot interpret {value!r} as int")
        return int(number[0])
    if dtype is DType.FLOAT:
        number = _parse_number(value)
        if number is not None:
            return number[0]
        parsed_bool = parse_bool(value)
        if parsed_bool is not None:
            return float(parsed_bool)
        raise DTypeError(f"cannot interpret {value!r} as float")
    if dtype is DType.DATETIME:
        parsed_datetime = parse_datetime(value)
        if parsed_datetime is None:
            raise DTypeError(f"cannot interpret {value!r} as datetime")
        return parsed_datetime
    if dtype is DType.STRING:
        if isinstance(value, str):
            return value
        if isinstance(value, (np.bool_, np.integer, np.floating)):
            return str(value.item())
        return str(value)
    raise DTypeError(f"unknown dtype {dtype!r}")


def encode_string_codes(data: np.ndarray,
                        mask: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Dictionary-encode a coerced STRING column into ``(codes, dictionary)``.

    ``codes`` is ``int32`` with ``-1`` in masked slots; ``dictionary`` is an
    object array of the distinct present values in *canonical* (sorted)
    order.  The canonical order is what makes encoding content-determined:
    encoding a whole column equals unifying the encodings of any row-split
    of it, which the chunked CSV scan relies on when per-chunk dictionaries
    are merged at combine time.
    """
    codes = np.full(data.shape[0], -1, dtype=np.int32)
    present = ~mask
    if not present.any():
        return codes, np.empty(0, dtype=object)
    uniques, inverse = np.unique(data[present].astype(str), return_inverse=True)
    codes[present] = inverse.astype(np.int32)
    return codes, uniques.astype(object)


def decode_string_codes(codes: np.ndarray,
                        dictionary: np.ndarray) -> np.ndarray:
    """Materialize dictionary codes back into an object array of ``str``.

    Masked slots (code ``-1``) decode to the STRING null sentinel ``""`` —
    byte-identical to what :func:`coerce_values` stores there, so decoded
    arrays are indistinguishable from ones that never left the object path.
    """
    if dictionary.size == 0:
        data = np.empty(codes.shape[0], dtype=object)
        data[:] = ""
        return data
    missing = codes < 0
    data = dictionary[np.where(missing, 0, codes)]
    if missing.any():
        data[missing] = ""
    return data


def unify_dictionaries(parts: Sequence[Tuple[np.ndarray, np.ndarray]]
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Merge per-chunk ``(codes, dictionary)`` pairs into one encoding.

    The unified dictionary is the sorted union of the part dictionaries —
    the same canonical order :func:`encode_string_codes` produces — and each
    part's codes are remapped through a ``searchsorted`` lookup, so the
    result is exactly the encoding of the concatenated column.
    """
    non_empty = [dictionary for _, dictionary in parts if dictionary.size]
    if not non_empty:
        return (np.concatenate([codes for codes, _ in parts])
                if parts else np.empty(0, dtype=np.int32),
                np.empty(0, dtype=object))
    if len(non_empty) == 1:
        unified = non_empty[0]
    else:
        unified = np.unique(np.concatenate(non_empty).astype(str)).astype(object)
    remapped: List[np.ndarray] = []
    for codes, dictionary in parts:
        if dictionary.size == 0 or (dictionary.size == unified.size and
                                    np.array_equal(dictionary, unified)):
            remapped.append(np.asarray(codes, dtype=np.int32))
            continue
        table = np.searchsorted(unified, dictionary).astype(np.int32)
        part = np.where(codes < 0, np.int32(-1), table[np.where(codes < 0, 0, codes)])
        remapped.append(part.astype(np.int32, copy=False))
    return np.concatenate(remapped), unified


def from_numpy(array: np.ndarray) -> Tuple[np.ndarray, np.ndarray, DType]:
    """Adopt an existing numpy array as column storage.

    Returns ``(data, mask, dtype)``.  Float arrays reuse NaN positions as the
    mask; other numeric arrays have an all-False mask; object arrays fall back
    to full inference and coercion.
    """
    if array.ndim != 1:
        raise DTypeError(f"columns must be one-dimensional, got shape {array.shape}")
    kind = array.dtype.kind
    if kind == "b":
        return array.astype(np.bool_), np.zeros(array.size, dtype=np.bool_), DType.BOOL
    if kind in ("i", "u"):
        return array.astype(np.int64), np.zeros(array.size, dtype=np.bool_), DType.INT
    if kind == "f":
        data = array.astype(np.float64)
        return data, np.isnan(data), DType.FLOAT
    if kind == "M":
        data = array.astype("datetime64[s]")
        return data, np.isnat(data), DType.DATETIME
    if kind in ("U", "S"):
        data = array.astype(str).astype(object)
        mask = np.array([is_missing_scalar(item) for item in data], dtype=np.bool_)
        return data, mask, DType.STRING
    values = list(array)
    dtype = infer_dtype(values)
    data, mask = coerce_values(values, dtype)
    return data, mask, dtype
