"""Task representation and argument tokenization for the task graph."""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

_COUNTER = itertools.count()


@dataclass(frozen=True)
class TaskRef:
    """A reference to the output of another task in the same graph."""

    key: str

    def __repr__(self) -> str:
        return f"TaskRef({self.key!r})"


@dataclass
class Task:
    """A single node in a :class:`~repro.graph.graph.TaskGraph`.

    Attributes
    ----------
    key:
        Unique identifier of the task inside its graph.
    func:
        The python callable to run.
    args / kwargs:
        Call arguments.  Any :class:`TaskRef` instances are replaced by the
        referenced task's result before *func* is called.
    token:
        A structural fingerprint of ``(func, args, kwargs)``; two tasks with
        the same token compute the same value and can be merged by the CSE
        optimization pass.
    token_customized:
        True when the token was deliberately made non-structural (impure
        calls, fused tasks).  Such tasks are excluded from the cross-call
        cache without re-tokenizing their arguments to find out.
    """

    key: str
    func: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    token: str = ""
    token_customized: bool = False

    def __post_init__(self) -> None:
        if not self.token:
            self.token = tokenize(self.func, self.args, self.kwargs)

    def dependencies(self) -> List[str]:
        """Keys of the tasks this task depends on."""
        refs: List[str] = []
        for value in self.args:
            refs.extend(_collect_refs(value))
        for value in self.kwargs.values():
            refs.extend(_collect_refs(value))
        return refs

    def substitute(self, mapping: Dict[str, str]) -> "Task":
        """Return a copy with dependency keys rewritten via *mapping*."""
        new_args = tuple(_rewrite_refs(value, mapping) for value in self.args)
        new_kwargs = {name: _rewrite_refs(value, mapping)
                      for name, value in self.kwargs.items()}
        return Task(self.key, self.func, new_args, new_kwargs, token=self.token,
                    token_customized=self.token_customized)

    def execute(self, results: Dict[str, Any]) -> Any:
        """Run the task, resolving TaskRef arguments from *results*."""
        args = tuple(_resolve(value, results) for value in self.args)
        kwargs = {name: _resolve(value, results) for name, value in self.kwargs.items()}
        return self.func(*args, **kwargs)

    def __repr__(self) -> str:
        name = getattr(self.func, "__name__", repr(self.func))
        return f"Task(key={self.key!r}, func={name}, deps={self.dependencies()})"


def next_key(prefix: str) -> str:
    """Generate a fresh task key with a readable prefix."""
    return f"{prefix}-{next(_COUNTER)}"


#: Keyword arguments that configure *where* a task's bytes come from, never
#: *what* it returns — currently only the parsed-chunk sidecar route
#: (``sidecar=`` on CSV partition parses).  Both the CSE tokenizer and the
#: cross-call cache key builder skip them, so toggling the disk cache (or
#: pointing it at another directory) can never fragment CSE sharing or
#: poison cache keys: a result computed without the sidecar legitimately
#: serves a sidecar-enabled run and vice versa.
NON_SEMANTIC_KWARGS = frozenset({"sidecar"})


def tokenize(func: Callable[..., Any], args: Tuple[Any, ...],
             kwargs: Dict[str, Any]) -> str:
    """Structural fingerprint of a call, used for CSE.

    Literal arguments are fingerprinted by value for cheap scalar types and by
    object identity for containers and arrays (two tasks that operate on the
    *same* in-memory frame/array share a fingerprint, which is exactly the
    sharing opportunity inside one EDA call).  TaskRef arguments are
    fingerprinted by the referenced key.  :data:`NON_SEMANTIC_KWARGS` are
    excluded — they do not change the task's value.
    """
    hasher = hashlib.sha1()
    hasher.update(_callable_name(func).encode())
    for value in args:
        hasher.update(_token_of(value).encode())
    for name in sorted(kwargs):
        if name in NON_SEMANTIC_KWARGS:
            continue
        hasher.update(name.encode())
        hasher.update(_token_of(kwargs[name]).encode())
    return hasher.hexdigest()[:16]


def _callable_name(func: Callable[..., Any]) -> str:
    module = getattr(func, "__module__", "")
    qualname = getattr(func, "__qualname__", getattr(func, "__name__", repr(func)))
    if "<lambda>" in qualname or "<locals>" in qualname:
        # Lambdas/closures are not structurally comparable; identity keeps
        # them distinct so CSE never merges two different closures.
        return f"{module}.{qualname}@{id(func)}"
    return f"{module}.{qualname}"


def walk_token(value: Any, ref: Callable[["TaskRef"], Any],
               leaf: Callable[[Any], Any]) -> Any:
    """Shared container recursion behind structural tokens.

    Handles TaskRefs (via *ref*), scalar literals and the standard argument
    containers; anything else is delegated to *leaf*.  Both the CSE
    tokenizer and the cross-call cache key builder use this walker, so a
    newly supported container type can never make the two disagree.  A
    handler returning None marks the value untokenizable and the None
    propagates outward (used by the cache; the CSE handlers never do).
    """
    if isinstance(value, TaskRef):
        return ref(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return f"lit:{type(value).__name__}:{value!r}"
    if isinstance(value, (tuple, list)):
        inner = [walk_token(item, ref, leaf) for item in value]
        if any(token is None for token in inner):
            return None
        return f"{type(value).__name__}:({','.join(inner)})"
    if isinstance(value, frozenset):
        inner = [walk_token(item, ref, leaf) for item in value]
        if any(token is None for token in inner):
            return None
        return f"frozenset:({','.join(sorted(inner))})"
    if isinstance(value, dict):
        parts = []
        for name, item in sorted(value.items(), key=lambda kv: repr(kv[0])):
            token = walk_token(item, ref, leaf)
            if token is None:
                return None
            parts.append(f"{name!r}={token}")
        return f"dict:({','.join(parts)})"
    return leaf(value)


def _cse_ref(value: TaskRef) -> str:
    return f"ref:{value.key}"


def _cse_leaf(value: Any) -> str:
    if isinstance(value, np.ndarray):
        return f"ndarray:{id(value)}"
    return f"obj:{type(value).__name__}:{id(value)}"


def _token_of(value: Any) -> str:
    return walk_token(value, _cse_ref, _cse_leaf)


def _collect_refs(value: Any) -> List[str]:
    if isinstance(value, TaskRef):
        return [value.key]
    if isinstance(value, (list, tuple)):
        refs: List[str] = []
        for item in value:
            refs.extend(_collect_refs(item))
        return refs
    if isinstance(value, dict):
        refs = []
        for item in value.values():
            refs.extend(_collect_refs(item))
        return refs
    return []


def _resolve(value: Any, results: Dict[str, Any]) -> Any:
    if isinstance(value, TaskRef):
        return results[value.key]
    if isinstance(value, list):
        return [_resolve(item, results) for item in value]
    if isinstance(value, tuple):
        return tuple(_resolve(item, results) for item in value)
    if isinstance(value, dict):
        return {name: _resolve(item, results) for name, item in value.items()}
    return value


def _rewrite_refs(value: Any, mapping: Dict[str, str]) -> Any:
    if isinstance(value, TaskRef):
        return TaskRef(mapping.get(value.key, value.key))
    if isinstance(value, list):
        return [_rewrite_refs(item, mapping) for item in value]
    if isinstance(value, tuple):
        return tuple(_rewrite_refs(item, mapping) for item in value)
    if isinstance(value, dict):
        return {name: _rewrite_refs(item, mapping) for name, item in value.items()}
    return value
