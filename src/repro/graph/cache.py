"""Cross-call intermediate cache for the task graph (fourth work-avoidance pass).

The optimizer already avoids work *inside* one EDA call (cull drops unneeded
tasks, CSE merges duplicated ones).  This module avoids work *across* calls:
an interactive user who iterates ``plot(df)`` → ``plot(df, "x")`` →
``plot_correlation(df)`` re-derives many of the same intermediates — the
partition slices, per-column summaries and histograms — from the same frame.

Two pieces make that safe and cheap:

* **Stable cache keys** (:func:`assign_cache_keys`).  Task *graph* keys are
  counter-based and never repeat across calls, so they cannot address a
  shared cache.  The cache key of a task is instead derived bottom-up from
  ``(func qualname, argument fingerprints)``: literals hash by value,
  DataFrames/Columns by their content fingerprint
  (:mod:`repro.frame.fingerprint`), frame sources and scan handles by
  their stamp-based ``fingerprint()`` (stable across processes while the
  files are unchanged — which is what keeps multi-file re-scans warm), and
  TaskRef arguments by the *cache key* of the referenced task — a Merkle
  scheme, so equal subgraphs built in different calls produce equal keys.
  Tasks that cannot be keyed stably (closures, impure calls, unrecognised
  argument types) get ``None`` and are simply never cached.

* **A bounded LRU store** (:class:`TaskCache`) with a byte-size budget and
  hit/miss/eviction statistics.  The schedulers consult it before executing
  a task; a hit skips not only the task but its entire exclusive ancestor
  subtree (see :meth:`repro.graph.scheduler.Scheduler.plan_with_cache`).

A process-wide cache instance (:func:`get_global_cache`) is shared by every
:class:`~repro.eda.compute.base.ComputeContext` whose config has
``cache.enabled`` set (the default), which is what makes repeated ``plot*``
and ``create_report`` calls on the same frame fast.
"""

from __future__ import annotations

import enum
import hashlib
import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.graph.graph import TaskGraph
from repro.graph.task import (
    NON_SEMANTIC_KWARGS,
    Task,
    TaskRef,
    _callable_name,
    walk_token,
)

#: Default byte budget of the global cache (also the Config default).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


# --------------------------------------------------------------------------- #
# Stable cache keys
# --------------------------------------------------------------------------- #
def assign_cache_keys(graph: TaskGraph) -> Dict[str, Optional[str]]:
    """Compute the stable cache key of every task in *graph*.

    Keys are assigned bottom-up in topological order so that a task's key can
    incorporate the keys of its dependencies.  A task whose function or any
    argument cannot be fingerprinted deterministically gets ``None``; the
    ``None`` propagates to every dependent task.
    """
    keys: Dict[str, Optional[str]] = {}
    for key in graph.toposort():
        keys[key] = _task_cache_key(graph[key], keys)
    return keys


def _task_cache_key(task: Task, dep_keys: Dict[str, Optional[str]]) -> Optional[str]:
    name = _callable_name(task.func)
    if "@" in name:
        # Lambdas/closures are fingerprinted by object identity, which does
        # not survive across calls.
        return None
    if task.token_customized:
        # A customized token marks an impure or fused task; neither may be
        # served from a cross-call cache.
        return None
    hasher = hashlib.sha1()
    hasher.update(name.encode())
    for value in task.args:
        token = _cache_token(value, dep_keys)
        if token is None:
            return None
        hasher.update(token.encode())
        hasher.update(b"\x00")
    for arg_name in sorted(task.kwargs):
        if arg_name in NON_SEMANTIC_KWARGS:
            # The sidecar route configures where bytes come from, not what
            # the task returns; hashing it would split cache keys between
            # otherwise-identical runs (see repro.graph.task).
            continue
        token = _cache_token(task.kwargs[arg_name], dep_keys)
        if token is None:
            return None
        hasher.update(arg_name.encode())
        hasher.update(token.encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


def _cache_token(value: Any, dep_keys: Dict[str, Optional[str]]) -> Optional[str]:
    """Deterministic fingerprint of one task argument (None = uncacheable).

    Shares the container recursion of the CSE tokenizer
    (:func:`repro.graph.task.walk_token`); only the leaves differ — content
    fingerprints here, object identity there — so the two can never drift
    apart on container handling.
    """
    def ref(task_ref: TaskRef) -> Optional[str]:
        dep_key = dep_keys.get(task_ref.key)
        return None if dep_key is None else f"ref:{dep_key}"

    def leaf(item: Any) -> Optional[str]:
        if isinstance(item, enum.Enum):
            return f"enum:{type(item).__module__}.{type(item).__qualname__}.{item.name}"
        if isinstance(item, np.ndarray):
            from repro.frame.fingerprint import fingerprint_array
            return f"nd:{fingerprint_array(item)}"
        fingerprint = getattr(item, "fingerprint", None)
        if callable(fingerprint):
            return f"fp:{type(item).__name__}:{fingerprint()}"
        return None

    return walk_token(value, ref, leaf)


# --------------------------------------------------------------------------- #
# Size estimation
# --------------------------------------------------------------------------- #
def estimate_size(value: Any, _depth: int = 0) -> int:
    """Approximate in-memory byte size of a cached value.

    Exact for numpy buffers, recursive (to a bounded depth) for containers
    and plain objects, ``sys.getsizeof`` otherwise.  The estimate only needs
    to be good enough for the LRU byte budget, not exact.
    """
    if value is None or isinstance(value, (bool, int, float)):
        return 32
    if isinstance(value, np.ndarray):
        return int(value.nbytes) + 128
    memory_bytes = getattr(value, "memory_bytes", None)
    if callable(memory_bytes):
        return int(memory_bytes()) + 256
    if isinstance(value, (str, bytes)):
        return sys.getsizeof(value)
    if _depth >= 4:
        return sys.getsizeof(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return sys.getsizeof(value) + sum(
            estimate_size(item, _depth + 1) for item in value)
    if isinstance(value, dict):
        return sys.getsizeof(value) + sum(
            estimate_size(item_key, _depth + 1) + estimate_size(item, _depth + 1)
            for item_key, item in value.items())
    attributes = getattr(value, "__dict__", None)
    if attributes is None and hasattr(type(value), "__slots__"):
        attributes = {slot: getattr(value, slot)
                      for slot in type(value).__slots__ if hasattr(value, slot)}
    if attributes:
        return sys.getsizeof(value) + sum(
            estimate_size(item, _depth + 1) for item in attributes.values())
    return sys.getsizeof(value)


def detach_views(value: Any, _depth: int = 0) -> Any:
    """Copy numpy views out of *value* so cached entries own their memory.

    Partition slices are views into the source frame's arrays; caching a
    view would pin the entire parent buffer (gigabytes for a large frame)
    while the byte budget only counts the slice.  Values whose arrays have
    a ``base`` are deep-copied before storage; everything else is stored
    as-is.
    """
    if isinstance(value, np.ndarray):
        return value.copy() if value.base is not None else value
    if _depth < 4 and isinstance(value, (list, tuple)):
        detached = [detach_views(item, _depth + 1) for item in value]
        return type(value)(detached) if isinstance(value, tuple) else detached
    from repro.frame.column import Column
    from repro.frame.frame import DataFrame
    if isinstance(value, Column):
        return value.copy() if _column_is_view(value) else value
    if isinstance(value, DataFrame):
        if any(_column_is_view(value.column(name)) for name in value.columns):
            return value.copy()
        return value
    return value


def _column_is_view(column: Any) -> bool:
    """True when the column's backing arrays are views into a parent buffer.

    Dictionary-encoded columns are judged on their codes array — touching
    ``column.data`` here would materialize the decoded object array just to
    inspect it.  The shared dictionary is the unique-values buffer itself,
    not a slice of a larger frame, so it never pins foreign memory.
    """
    if column.is_dictionary:
        return column.codes.base is not None or column.mask.base is not None
    return column.data.base is not None or column.mask.base is not None


# --------------------------------------------------------------------------- #
# The LRU store
# --------------------------------------------------------------------------- #
@dataclass
class CacheStats:
    """Counters of everything the cache did since creation (or reset)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    rejected: int = 0          # values larger than the whole budget
    current_bytes: int = 0
    entries: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view for logging and the benchmarks."""
        return {
            "hits": self.hits, "misses": self.misses, "stores": self.stores,
            "evictions": self.evictions, "rejected": self.rejected,
            "current_bytes": self.current_bytes, "entries": self.entries,
            "hit_rate": self.hit_rate,
        }


class TaskCache:
    """Thread-safe LRU cache of task results with a byte-size budget.

    Entries are keyed by the stable cache keys of :func:`assign_cache_keys`.
    When an insert pushes the total estimated size over ``max_bytes``, the
    least recently used entries are evicted until the budget holds; a single
    value larger than the whole budget is rejected outright.
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[str, Tuple[Any, int]]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def lookup(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a hit refreshes the entry's LRU position."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return True, entry[0]

    def put(self, key: str, value: Any) -> bool:
        """Store *value* under *key*, evicting LRU entries to fit the budget.

        Values holding numpy views are copied first (see
        :func:`detach_views`) so an entry never pins memory beyond what the
        budget accounts for.
        """
        value = detach_views(value)
        size = estimate_size(value)
        with self._lock:
            if size > self.max_bytes:
                self.stats.rejected += 1
                return False
            previous = self._entries.pop(key, None)
            if previous is not None:
                self.stats.current_bytes -= previous[1]
            self._entries[key] = (value, size)
            self.stats.current_bytes += size
            self.stats.stores += 1
            self._evict_to_fit()
            self.stats.entries = len(self._entries)
            return True

    def _evict_to_fit(self) -> None:
        while self.stats.current_bytes > self.max_bytes and self._entries:
            _, (_, size) = self._entries.popitem(last=False)
            self.stats.current_bytes -= size
            self.stats.evictions += 1

    # ------------------------------------------------------------------ #
    # Management
    # ------------------------------------------------------------------ #
    def resize(self, max_bytes: int) -> None:
        """Change the byte budget, evicting immediately if it shrank."""
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        with self._lock:
            self.max_bytes = int(max_bytes)
            self._evict_to_fit()
            self.stats.entries = len(self._entries)

    def clear(self) -> None:
        """Drop every entry (statistics counters are kept)."""
        with self._lock:
            self._entries.clear()
            self.stats.current_bytes = 0
            self.stats.entries = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> List[str]:
        """Current entry keys in LRU order (oldest first)."""
        with self._lock:
            return list(self._entries.keys())

    def __repr__(self) -> str:
        return (f"TaskCache(entries={self.stats.entries}, "
                f"bytes={self.stats.current_bytes}/{self.max_bytes}, "
                f"hits={self.stats.hits}, misses={self.stats.misses})")


# --------------------------------------------------------------------------- #
# The process-wide cache shared across EDA calls
# --------------------------------------------------------------------------- #
_GLOBAL_CACHE: Optional[TaskCache] = None
_GLOBAL_LOCK = threading.Lock()


def get_global_cache() -> TaskCache:
    """The process-wide cache shared by every cache-enabled EDA call."""
    global _GLOBAL_CACHE
    with _GLOBAL_LOCK:
        if _GLOBAL_CACHE is None:
            _GLOBAL_CACHE = TaskCache()
        return _GLOBAL_CACHE


def set_global_cache(cache: Optional[TaskCache]) -> None:
    """Replace the process-wide cache (None installs a fresh one lazily)."""
    global _GLOBAL_CACHE
    with _GLOBAL_LOCK:
        _GLOBAL_CACHE = cache


def clear_global_cache() -> None:
    """Empty the process-wide cache without replacing it."""
    with _GLOBAL_LOCK:
        if _GLOBAL_CACHE is not None:
            _GLOBAL_CACHE.clear()
