"""Row-partitioned DataFrame collection with lazy per-partition operations.

This plays the role of ``dask.dataframe``: a DataFrame is split into row
chunks, per-partition work is expressed lazily, and reductions are combined
with a tree so the scheduler can run chunks in parallel.

It also reproduces the paper's "precompute chunk size" stage (Section 5.2):
partition boundaries are computed *before* the lazy graph is built and passed
in as plain data, so graph construction never needs to inspect a lazy value.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import GraphError
from repro.frame.frame import DataFrame, concat_rows
from repro.frame.source import _read_csv_slice, _slice_frame
from repro.graph.delayed import Delayed, delayed

#: Default number of rows per partition; chosen so per-partition numpy work
#: dominates python/scheduler overhead for datasets in the paper's size range.
DEFAULT_PARTITION_ROWS = 100_000


def precompute_chunk_sizes(n_rows: int,
                           partition_rows: Optional[int] = None,
                           n_partitions: Optional[int] = None) -> List[Tuple[int, int]]:
    """Compute partition boundaries ahead of graph construction.

    Exactly one of *partition_rows* / *n_partitions* may be given; with
    neither, :data:`DEFAULT_PARTITION_ROWS` is used.  Returns a list of
    ``(start, stop)`` row ranges covering ``[0, n_rows)``.
    """
    if n_rows < 0:
        raise GraphError("n_rows must be non-negative")
    if partition_rows is not None and n_partitions is not None:
        raise GraphError("pass either partition_rows or n_partitions, not both")
    if n_rows == 0:
        return [(0, 0)]
    if n_partitions is not None:
        if n_partitions <= 0:
            raise GraphError("n_partitions must be positive")
        partition_rows = max(1, math.ceil(n_rows / n_partitions))
    if partition_rows is None:
        partition_rows = DEFAULT_PARTITION_ROWS
    if partition_rows <= 0:
        raise GraphError("partition_rows must be positive")
    boundaries = []
    start = 0
    while start < n_rows:
        stop = min(start + partition_rows, n_rows)
        boundaries.append((start, stop))
        start = stop
    return boundaries


# The partition task functions (_slice_frame, _read_csv_slice) live in
# repro.frame.source so every layer — FrameSource implementations, this
# module's legacy constructors and the compute planner — shares the same
# function objects, keeping CSE tokens and cross-call cache keys aligned.


def precompute_csv_chunks(path: str,
                          partition_rows: int) -> Tuple[List[str], List[Tuple[int, int]], List[Tuple[int, int]]]:
    """Scan a CSV file once and precompute its partition byte ranges.

    This is the chunk-size precompute stage of Section 5.2 applied to file
    input: the scan records the byte offset of every *partition_rows*-th data
    record so the lazy graph can be built with fully known chunk boundaries.
    Returns ``(column names, row boundaries, byte ranges)``.  Delegates to
    the quote-aware layout scanner in :mod:`repro.frame.io`, so records with
    embedded newlines inside quoted fields are never split.
    """
    from repro.frame.io import _scan_csv_layout

    if partition_rows <= 0:
        raise GraphError("partition_rows must be positive")
    columns, boundaries, byte_ranges, _ = _scan_csv_layout(path, partition_rows)
    return columns, boundaries, byte_ranges


class PartitionedFrame:
    """A DataFrame split into row partitions with lazy operations.

    Partitions themselves are :class:`Delayed` values, so everything built on
    top of them lands in one task graph and benefits from sharing: two
    reductions over the same column reuse the same partition-slice tasks.
    """

    def __init__(self, partitions: Sequence[Delayed], columns: Sequence[str],
                 boundaries: Sequence[Tuple[int, int]]):
        if len(partitions) != len(boundaries):
            raise GraphError("partitions and boundaries must have equal length")
        self._partitions = list(partitions)
        self._columns = list(columns)
        self._boundaries = [tuple(boundary) for boundary in boundaries]

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_frame(cls, frame: DataFrame,
                   partition_rows: Optional[int] = None,
                   n_partitions: Optional[int] = None) -> "PartitionedFrame":
        """Partition an in-memory DataFrame.

        The chunk sizes are precomputed eagerly (the paper's extra pipeline
        stage); the slicing itself is lazy so it can be parallelized and
        shared inside the task graph.
        """
        boundaries = precompute_chunk_sizes(len(frame), partition_rows, n_partitions)
        slicer = delayed(_slice_frame, prefix="partition")
        partitions = [slicer(frame, start, stop) for start, stop in boundaries]
        return cls(partitions, frame.columns, boundaries)

    @classmethod
    def from_source(cls, source: Any,
                    columns: Optional[Sequence[str]] = None,
                    predicate: Optional[Any] = None,
                    sidecar: Optional[Any] = None) -> "PartitionedFrame":
        """Partition any :class:`~repro.frame.source.FrameSource`.

        The source's precomputed :class:`~repro.frame.source.SourcePartition`
        rows-ranges become lazy tasks — ``delayed(part.func)(*part.args)`` —
        so in-memory slices, single-file CSV byte ranges and multi-file
        concatenations all land in the same task graph shape, and a custom
        source needs no graph-layer code at all.

        *columns* projects every partition task onto that column subset
        (the source must declare ``capabilities.projection=True``): the
        projection travels as an explicit task argument, so two reductions
        needing the same column set share one projected parse per chunk —
        within a graph via CSE and across calls via the intermediate cache
        — while projected and full parses always occupy distinct cache
        keys.

        *predicate* — a :class:`~repro.frame.predicate.Predicate` or its
        ``spec()`` tuple form — filters every partition task's rows before
        they reach downstream reductions (the source must declare
        ``capabilities.predicates=True``).  Like the projection, it travels
        as an explicit task argument, so filtered and unfiltered parses of
        the same chunk occupy distinct CSE tokens and cross-call cache
        keys, while two filtered reductions with the same predicate share
        one parse.  Note the boundaries keep the source's pre-filter row
        offsets: a filtered partition holds *at most* ``stop - start``
        rows, so indexed reductions (which assume exact global positions)
        must not be planned over a filtered frame.

        *sidecar* — a :class:`~repro.frame.sidecar.SidecarRoute` tuple —
        routes every partition task through the parsed-chunk binary cache
        (the source must declare ``capabilities.chunk_sidecar=True``).
        Unlike the two pushdowns it is non-semantic: the graph layer
        excludes the keyword from CSE tokens and cross-call cache keys, so
        enabling or moving the disk cache never changes task identity.
        """
        parts = source.partitions()
        if not parts:
            raise GraphError("a FrameSource must expose at least one partition")
        if columns is not None:
            capabilities = getattr(source, "capabilities", None)
            if not getattr(capabilities, "projection", False):
                raise GraphError(
                    f"{type(source).__name__} does not support column "
                    f"projection (capabilities.projection is False); its "
                    f"partition tasks take no columns= keyword")
            known = set(source.columns)
            for name in columns:
                if name not in known:
                    raise GraphError(
                        f"projection names unknown column {name!r}; "
                        f"source has {source.columns}")
        spec = None
        if predicate is not None:
            capabilities = getattr(source, "capabilities", None)
            if not getattr(capabilities, "predicates", False):
                raise GraphError(
                    f"{type(source).__name__} does not support predicate "
                    f"pushdown (capabilities.predicates is False); its "
                    f"partition tasks take no predicate= keyword")
            spec = predicate.spec() if hasattr(predicate, "spec") \
                else tuple(tuple(entry) for entry in predicate)
        route = None
        if sidecar is not None:
            capabilities = getattr(source, "capabilities", None)
            if not getattr(capabilities, "chunk_sidecar", False):
                raise GraphError(
                    f"{type(source).__name__} does not support the "
                    f"parsed-chunk sidecar cache (capabilities.chunk_sidecar "
                    f"is False); its partition tasks take no sidecar= keyword")
            route = tuple(sidecar)
        partitions = []
        for part in parts:
            func, args, kwargs, prefix = part.task_spec(columns, spec, route)
            partitions.append(delayed(func, prefix=prefix)(*args, **kwargs))
        boundaries = [(part.start, part.stop) for part in parts]
        frame_columns = source.columns if columns is None else list(columns)
        return cls(partitions, frame_columns, boundaries)

    @classmethod
    def from_csv(cls, path: str,
                 partition_rows: int = DEFAULT_PARTITION_ROWS,
                 inference_rows: int = 1000) -> "PartitionedFrame":
        """Partition a CSV file: each partition parses its own byte range.

        The file is scanned once up front (the chunk-size precompute stage);
        dtypes are inferred from the first *inference_rows* rows and applied
        to every partition so all partitions agree on storage dtypes.  The
        actual reading and parsing happens lazily, per partition, inside the
        task graph — which is exactly the expensive input stage the paper's
        single-graph optimization shares across visualizations.
        """
        from repro.frame.io import scan_csv

        # partition_rows is an explicit caller choice; pass an effectively
        # unbounded budget so scan_csv's memory heuristic never shrinks it
        # (out-of-core callers go through scan_csv directly instead).
        scan = scan_csv(path, chunk_rows=partition_rows,
                        budget_bytes=2 ** 62,
                        inference_rows=inference_rows)
        return cls.from_scan(scan)

    @classmethod
    def from_scan(cls, scan: Any) -> "PartitionedFrame":
        """Partition a :class:`~repro.frame.io.ScannedFrame` lazily.

        Every partition task parses its own record-aligned byte range, and is
        stamped with the scan's ``(size, mtime_ns)`` so the cross-call cache
        cannot serve a partition of a file overwritten in place (same path
        and byte boundaries, different content).
        """
        from repro.frame.source import CsvSource
        return cls.from_source(CsvSource(scan))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def npartitions(self) -> int:
        """Number of row partitions."""
        return len(self._partitions)

    @property
    def columns(self) -> List[str]:
        """Column names (known without computing anything)."""
        return list(self._columns)

    @property
    def boundaries(self) -> List[Tuple[int, int]]:
        """Precomputed ``(start, stop)`` row ranges of each partition."""
        return list(self._boundaries)

    @property
    def n_rows(self) -> int:
        """Total number of rows (known from the precomputed chunk sizes)."""
        if not self._boundaries:
            return 0
        return self._boundaries[-1][1]

    @property
    def partitions(self) -> List[Delayed]:
        """The lazy partition values."""
        return list(self._partitions)

    # ------------------------------------------------------------------ #
    # Lazy operations
    # ------------------------------------------------------------------ #
    def map_partitions(self, func: Callable[..., Any], *args: Any,
                       **kwargs: Any) -> List[Delayed]:
        """Apply ``func(partition, *args, **kwargs)`` lazily to every partition."""
        wrapped = delayed(func, prefix=getattr(func, "__name__", "map"))
        return [wrapped(partition, *args, **kwargs) for partition in self._partitions]

    def reduction(self, chunk: Callable[..., Any],
                  combine: Callable[[List[Any]], Any],
                  finalize: Optional[Callable[[Any], Any]] = None,
                  chunk_args: Tuple[Any, ...] = (),
                  split_every: int = 8) -> Delayed:
        """Tree reduction over all partitions.

        ``chunk`` maps one partition to a partial result, ``combine`` merges a
        list of partial results (applied level by level with fan-in
        *split_every*), and ``finalize`` post-processes the final merge.
        """
        partials = self.map_partitions(chunk, *chunk_args)
        return tree_combine(partials, combine, finalize, split_every=split_every)

    def reduction_indexed(self, chunk: Callable[..., Any],
                          combine: Callable[[List[Any]], Any],
                          finalize: Optional[Callable[[Any], Any]] = None,
                          chunk_args: Tuple[Any, ...] = (),
                          split_every: int = 8) -> Delayed:
        """Tree reduction whose chunk function also receives its row range.

        ``chunk(partition, start, stop, *chunk_args)`` — the precomputed
        global row boundaries let position-dependent sketches (e.g. the
        missing-spectrum row bins) place their partition in the whole
        dataset without any global pass.
        """
        wrapped = delayed(chunk, prefix=getattr(chunk, "__name__", "chunk"))
        partials = [wrapped(partition, start, stop, *chunk_args)
                    for partition, (start, stop)
                    in zip(self._partitions, self._boundaries)]
        return tree_combine(partials, combine, finalize, split_every=split_every)

    def column_values(self, column: str) -> List[Delayed]:
        """Lazy per-partition Column objects for one column."""
        if column not in self._columns:
            raise GraphError(f"unknown column {column!r}")
        return self.map_partitions(_extract_column, column)

    def compute(self, scheduler: Optional[Any] = None) -> DataFrame:
        """Materialize the whole collection back into one DataFrame."""
        from repro.graph.delayed import compute as compute_values
        frames = compute_values(*self._partitions, scheduler=scheduler)
        return concat_rows([frame for frame in frames if len(frame) > 0] or frames)


def _extract_column(frame: DataFrame, column: str):
    return frame.column(column)


def tree_combine(values: Sequence[Delayed],
                 combine: Callable[[List[Any]], Any],
                 finalize: Optional[Callable[[Any], Any]] = None,
                 split_every: int = 8) -> Delayed:
    """Combine lazy values with a balanced tree of *combine* calls."""
    if not values:
        raise GraphError("cannot combine zero values")
    combiner = delayed(combine, prefix=getattr(combine, "__name__", "combine"))
    level = list(values)
    while len(level) > 1:
        next_level: List[Delayed] = []
        for index in range(0, len(level), split_every):
            group = level[index:index + split_every]
            if len(group) == 1:
                next_level.append(group[0])
            else:
                next_level.append(combiner(list(group)))
        level = next_level
    result = level[0]
    if len(values) == 1:
        # A single partition skips the combine tree entirely; run combine once
        # so chunk/combine/finalize semantics stay uniform for callers.
        result = combiner([result])
    if finalize is not None:
        finalizer = delayed(finalize, prefix=getattr(finalize, "__name__", "finalize"))
        result = finalizer(result)
    return result
