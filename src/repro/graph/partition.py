"""Row-partitioned DataFrame collection with lazy per-partition operations.

This plays the role of ``dask.dataframe``: a DataFrame is split into row
chunks, per-partition work is expressed lazily, and reductions are combined
with a tree so the scheduler can run chunks in parallel.

It also reproduces the paper's "precompute chunk size" stage (Section 5.2):
partition boundaries are computed *before* the lazy graph is built and passed
in as plain data, so graph construction never needs to inspect a lazy value.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import GraphError
from repro.frame.frame import DataFrame, concat_rows
from repro.graph.delayed import Delayed, delayed

#: Default number of rows per partition; chosen so per-partition numpy work
#: dominates python/scheduler overhead for datasets in the paper's size range.
DEFAULT_PARTITION_ROWS = 100_000


def precompute_chunk_sizes(n_rows: int,
                           partition_rows: Optional[int] = None,
                           n_partitions: Optional[int] = None) -> List[Tuple[int, int]]:
    """Compute partition boundaries ahead of graph construction.

    Exactly one of *partition_rows* / *n_partitions* may be given; with
    neither, :data:`DEFAULT_PARTITION_ROWS` is used.  Returns a list of
    ``(start, stop)`` row ranges covering ``[0, n_rows)``.
    """
    if n_rows < 0:
        raise GraphError("n_rows must be non-negative")
    if partition_rows is not None and n_partitions is not None:
        raise GraphError("pass either partition_rows or n_partitions, not both")
    if n_rows == 0:
        return [(0, 0)]
    if n_partitions is not None:
        if n_partitions <= 0:
            raise GraphError("n_partitions must be positive")
        partition_rows = max(1, math.ceil(n_rows / n_partitions))
    if partition_rows is None:
        partition_rows = DEFAULT_PARTITION_ROWS
    if partition_rows <= 0:
        raise GraphError("partition_rows must be positive")
    boundaries = []
    start = 0
    while start < n_rows:
        stop = min(start + partition_rows, n_rows)
        boundaries.append((start, stop))
        start = stop
    return boundaries


def _slice_frame(frame: DataFrame, start: int, stop: int) -> DataFrame:
    """Materialize one partition of *frame* (module-level so CSE can share it)."""
    return frame.slice(start, stop)


def _read_csv_slice(path: str, byte_start: int, byte_stop: int,
                    column_names: Tuple[str, ...], dtypes: dict,
                    file_stamp: Tuple[int, int] = (0, 0)) -> DataFrame:
    """Parse one byte range of a CSV file into a DataFrame partition.

    *file_stamp* (size, mtime_ns of the file at graph-build time) is not
    used here — it exists so the task's cross-call cache key changes when
    the file is overwritten in place, even with identical byte boundaries.
    """
    import io as _io

    from repro.frame.io import read_csv

    with open(path, "rb") as handle:
        handle.seek(byte_start)
        payload = handle.read(byte_stop - byte_start)
    text = payload.decode("utf-8")
    return read_csv(_io.StringIO(text), has_header=False,
                    column_names=list(column_names), dtypes=dtypes)


def precompute_csv_chunks(path: str,
                          partition_rows: int) -> Tuple[List[str], List[Tuple[int, int]], List[Tuple[int, int]]]:
    """Scan a CSV file once and precompute its partition byte ranges.

    This is the chunk-size precompute stage of Section 5.2 applied to file
    input: the scan records the byte offset of every *partition_rows*-th data
    line so the lazy graph can be built with fully known chunk boundaries.
    Returns ``(column names, row boundaries, byte ranges)``.
    """
    if partition_rows <= 0:
        raise GraphError("partition_rows must be positive")
    byte_offsets: List[int] = []
    row_counts: List[int] = []
    with open(path, "rb") as handle:
        header = handle.readline().decode("utf-8").rstrip("\r\n")
        columns = [name.strip() for name in header.split(",")]
        rows_in_partition = 0
        total_rows = 0
        byte_offsets.append(handle.tell())
        for line in handle:
            if not line.strip():
                continue
            rows_in_partition += 1
            total_rows += 1
            if rows_in_partition == partition_rows:
                byte_offsets.append(handle.tell())
                row_counts.append(rows_in_partition)
                rows_in_partition = 0
        end_of_file = handle.tell()
    if rows_in_partition or not row_counts:
        byte_offsets.append(end_of_file)
        row_counts.append(rows_in_partition)
    byte_ranges = [(byte_offsets[index], byte_offsets[index + 1])
                   for index in range(len(row_counts))]
    boundaries: List[Tuple[int, int]] = []
    start = 0
    for count in row_counts:
        boundaries.append((start, start + count))
        start += count
    return columns, boundaries, byte_ranges


class PartitionedFrame:
    """A DataFrame split into row partitions with lazy operations.

    Partitions themselves are :class:`Delayed` values, so everything built on
    top of them lands in one task graph and benefits from sharing: two
    reductions over the same column reuse the same partition-slice tasks.
    """

    def __init__(self, partitions: Sequence[Delayed], columns: Sequence[str],
                 boundaries: Sequence[Tuple[int, int]]):
        if len(partitions) != len(boundaries):
            raise GraphError("partitions and boundaries must have equal length")
        self._partitions = list(partitions)
        self._columns = list(columns)
        self._boundaries = [tuple(boundary) for boundary in boundaries]

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_frame(cls, frame: DataFrame,
                   partition_rows: Optional[int] = None,
                   n_partitions: Optional[int] = None) -> "PartitionedFrame":
        """Partition an in-memory DataFrame.

        The chunk sizes are precomputed eagerly (the paper's extra pipeline
        stage); the slicing itself is lazy so it can be parallelized and
        shared inside the task graph.
        """
        boundaries = precompute_chunk_sizes(len(frame), partition_rows, n_partitions)
        slicer = delayed(_slice_frame, prefix="partition")
        partitions = [slicer(frame, start, stop) for start, stop in boundaries]
        return cls(partitions, frame.columns, boundaries)

    @classmethod
    def from_csv(cls, path: str,
                 partition_rows: int = DEFAULT_PARTITION_ROWS,
                 inference_rows: int = 1000) -> "PartitionedFrame":
        """Partition a CSV file: each partition parses its own byte range.

        The file is scanned once up front (the chunk-size precompute stage);
        dtypes are inferred from the first *inference_rows* rows and applied
        to every partition so all partitions agree on storage dtypes.  The
        actual reading and parsing happens lazily, per partition, inside the
        task graph — which is exactly the expensive input stage the paper's
        single-graph optimization shares across visualizations.
        """
        import os

        from repro.frame.io import read_csv

        columns, boundaries, byte_ranges = precompute_csv_chunks(path, partition_rows)
        preview = read_csv(path, max_rows=inference_rows)
        dtypes = preview.dtypes
        # Stamp the file's identity into every task so the cross-call cache
        # cannot serve a partition of an overwritten file (same path and
        # byte boundaries, different content).
        file_stat = os.stat(path)
        file_stamp = (int(file_stat.st_size), int(file_stat.st_mtime_ns))
        reader = delayed(_read_csv_slice, prefix="read_csv_partition")
        partitions = [reader(path, byte_start, byte_stop, tuple(columns), dtypes,
                             file_stamp)
                      for byte_start, byte_stop in byte_ranges]
        return cls(partitions, columns, boundaries)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def npartitions(self) -> int:
        """Number of row partitions."""
        return len(self._partitions)

    @property
    def columns(self) -> List[str]:
        """Column names (known without computing anything)."""
        return list(self._columns)

    @property
    def boundaries(self) -> List[Tuple[int, int]]:
        """Precomputed ``(start, stop)`` row ranges of each partition."""
        return list(self._boundaries)

    @property
    def n_rows(self) -> int:
        """Total number of rows (known from the precomputed chunk sizes)."""
        if not self._boundaries:
            return 0
        return self._boundaries[-1][1]

    @property
    def partitions(self) -> List[Delayed]:
        """The lazy partition values."""
        return list(self._partitions)

    # ------------------------------------------------------------------ #
    # Lazy operations
    # ------------------------------------------------------------------ #
    def map_partitions(self, func: Callable[..., Any], *args: Any,
                       **kwargs: Any) -> List[Delayed]:
        """Apply ``func(partition, *args, **kwargs)`` lazily to every partition."""
        wrapped = delayed(func, prefix=getattr(func, "__name__", "map"))
        return [wrapped(partition, *args, **kwargs) for partition in self._partitions]

    def reduction(self, chunk: Callable[..., Any],
                  combine: Callable[[List[Any]], Any],
                  finalize: Optional[Callable[[Any], Any]] = None,
                  chunk_args: Tuple[Any, ...] = (),
                  split_every: int = 8) -> Delayed:
        """Tree reduction over all partitions.

        ``chunk`` maps one partition to a partial result, ``combine`` merges a
        list of partial results (applied level by level with fan-in
        *split_every*), and ``finalize`` post-processes the final merge.
        """
        partials = self.map_partitions(chunk, *chunk_args)
        return tree_combine(partials, combine, finalize, split_every=split_every)

    def column_values(self, column: str) -> List[Delayed]:
        """Lazy per-partition Column objects for one column."""
        if column not in self._columns:
            raise GraphError(f"unknown column {column!r}")
        return self.map_partitions(_extract_column, column)

    def compute(self, scheduler: Optional[Any] = None) -> DataFrame:
        """Materialize the whole collection back into one DataFrame."""
        from repro.graph.delayed import compute as compute_values
        frames = compute_values(*self._partitions, scheduler=scheduler)
        return concat_rows([frame for frame in frames if len(frame) > 0] or frames)


def _extract_column(frame: DataFrame, column: str):
    return frame.column(column)


def tree_combine(values: Sequence[Delayed],
                 combine: Callable[[List[Any]], Any],
                 finalize: Optional[Callable[[Any], Any]] = None,
                 split_every: int = 8) -> Delayed:
    """Combine lazy values with a balanced tree of *combine* calls."""
    if not values:
        raise GraphError("cannot combine zero values")
    combiner = delayed(combine, prefix=getattr(combine, "__name__", "combine"))
    level = list(values)
    while len(level) > 1:
        next_level: List[Delayed] = []
        for index in range(0, len(level), split_every):
            group = level[index:index + split_every]
            if len(group) == 1:
                next_level.append(group[0])
            else:
                next_level.append(combiner(list(group)))
        level = next_level
    result = level[0]
    if len(values) == 1:
        # A single partition skips the combine tree entirely; run combine once
        # so chunk/combine/finalize semantics stay uniform for callers.
        result = combiner([result])
    if finalize is not None:
        finalizer = delayed(finalize, prefix=getattr(finalize, "__name__", "finalize"))
        result = finalizer(result)
    return result
