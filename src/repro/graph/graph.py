"""The TaskGraph container: a DAG of named tasks."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.errors import CycleError, GraphError
from repro.graph.task import Task, TaskRef


class TaskGraph:
    """A directed acyclic graph of :class:`~repro.graph.task.Task` nodes.

    The graph maps task keys to tasks; edges are implied by the
    :class:`TaskRef` arguments of each task.  The container supports merging
    (used to combine the graphs of many lazy values into the single graph the
    paper's Compute module executes), topological ordering and dependency
    queries needed by the optimizer and the schedulers.
    """

    def __init__(self, tasks: Optional[Iterable[Task]] = None):
        self._tasks: Dict[str, Task] = {}
        if tasks is not None:
            for task in tasks:
                self.add(task)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, task: Task) -> None:
        """Add a task; re-adding the same key with a different token is an error."""
        existing = self._tasks.get(task.key)
        if existing is not None and existing.token != task.token:
            raise GraphError(f"task key {task.key!r} already exists with different contents")
        self._tasks[task.key] = task

    def update(self, other: "TaskGraph") -> None:
        """Merge all tasks from another graph into this one."""
        for task in other.tasks():
            self.add(task)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, key: object) -> bool:
        return key in self._tasks

    def __iter__(self) -> Iterator[str]:
        return iter(self._tasks)

    def __getitem__(self, key: str) -> Task:
        try:
            return self._tasks[key]
        except KeyError:
            raise GraphError(f"unknown task key {key!r}") from None

    def keys(self) -> List[str]:
        """All task keys in insertion order."""
        return list(self._tasks.keys())

    def tasks(self) -> List[Task]:
        """All tasks in insertion order."""
        return list(self._tasks.values())

    def dependencies(self, key: str) -> List[str]:
        """Keys of the direct dependencies of *key*."""
        return self[key].dependencies()

    def dependents(self) -> Dict[str, Set[str]]:
        """Reverse adjacency: key -> set of keys that depend on it."""
        reverse: Dict[str, Set[str]] = {key: set() for key in self._tasks}
        for key, task in self._tasks.items():
            for dependency in task.dependencies():
                if dependency in reverse:
                    reverse[dependency].add(key)
        return reverse

    def validate(self) -> None:
        """Check that every referenced dependency exists in the graph."""
        for key, task in self._tasks.items():
            for dependency in task.dependencies():
                if dependency not in self._tasks:
                    raise GraphError(
                        f"task {key!r} depends on unknown task {dependency!r}")

    def toposort(self) -> List[str]:
        """Topological order of all task keys (dependencies first).

        Raises :class:`~repro.errors.CycleError` if the graph has a cycle.
        """
        self.validate()
        order: List[str] = []
        state: Dict[str, int] = {}  # 0 = unvisited, 1 = in stack, 2 = done
        for start in self._tasks:
            if state.get(start, 0) == 2:
                continue
            stack = [(start, iter(self.dependencies(start)))]
            state[start] = 1
            while stack:
                key, iterator = stack[-1]
                advanced = False
                for dependency in iterator:
                    status = state.get(dependency, 0)
                    if status == 1:
                        raise CycleError(
                            f"cycle detected involving tasks {dependency!r} and {key!r}")
                    if status == 0:
                        state[dependency] = 1
                        stack.append((dependency, iter(self.dependencies(dependency))))
                        advanced = True
                        break
                if advanced:
                    continue
                stack.pop()
                state[key] = 2
                order.append(key)
        return order

    def ancestors(self, keys: Sequence[str]) -> Set[str]:
        """All keys reachable (via dependencies) from *keys*, inclusive."""
        seen: Set[str] = set()
        stack = list(keys)
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            stack.extend(self.dependencies(key))
        return seen

    def copy(self) -> "TaskGraph":
        """Shallow copy (tasks are shared, the mapping is new)."""
        return TaskGraph(self.tasks())

    def __repr__(self) -> str:
        return f"TaskGraph(tasks={len(self._tasks)})"
