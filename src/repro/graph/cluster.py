"""Analytical cluster cost model (and legacy simulation) for Figure 6(c).

The paper runs ``create_report`` on an 8-node cluster reading 100M rows from
HDFS and shows that wall time drops as workers are added because the HDFS
read is split across nodes.  Since this repo grew a *real* distributed
backend (:mod:`repro.graph.remote` — socket workers running actual parse +
sketch bundles), the experiment itself is no longer simulated: the
Figure 6(c) benchmark measures genuine multi-worker runs and uses
:meth:`ClusterCostModel.calibrate` to fit the model's parameters to those
measurements, then extrapolates the curve to worker counts the local
machine cannot host.

* :class:`ClusterCostModel` — the analytical model: total time = (scan
  bytes / aggregate read bandwidth) + (compute work / aggregate compute
  throughput) + fixed per-run coordination overhead.
* :class:`SimulatedCluster` — **deprecated**: the pre-remote-backend
  thread-pool make-believe (sleep-injected "I/O"), kept only for the legacy
  shape tests.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import GraphError


@dataclass
class ClusterCostModel:
    """Analytical wall-time model for the Figure 6(c) experiment.

    Attributes
    ----------
    hdfs_bandwidth_bytes_per_s:
        Aggregate read bandwidth of ONE worker pulling from HDFS.  Reads
        scale linearly with workers (the paper's explanation for the speedup).
    worker_throughput_rows_per_s:
        Rows per second one worker can process for the report computation.
    coordination_overhead_s:
        Fixed per-run scheduling/driver overhead, independent of workers.
    bytes_per_row:
        On-disk size per row of the workload.
    """

    hdfs_bandwidth_bytes_per_s: float = 200e6
    worker_throughput_rows_per_s: float = 2.5e6
    coordination_overhead_s: float = 15.0
    bytes_per_row: float = 60.0

    def estimate_seconds(self, n_rows: int, n_workers: int) -> float:
        """Estimated wall time of ``create_report`` on the simulated cluster."""
        if n_workers <= 0:
            raise GraphError("n_workers must be positive")
        if n_rows < 0:
            raise GraphError("n_rows must be non-negative")
        io_seconds = (n_rows * self.bytes_per_row) / (
            self.hdfs_bandwidth_bytes_per_s * n_workers)
        compute_seconds = n_rows / (self.worker_throughput_rows_per_s * n_workers)
        return self.coordination_overhead_s + io_seconds + compute_seconds

    def sweep(self, n_rows: int, workers: Sequence[int]) -> List[float]:
        """Estimated wall time for each worker count (the Fig. 6c series)."""
        return [self.estimate_seconds(n_rows, n) for n in workers]

    def calibrate_from_single_node(self, n_rows: int,
                                   measured_seconds: float,
                                   io_fraction: float = 0.4,
                                   coordination_seconds: float = 0.0) -> "ClusterCostModel":
        """Return a model whose 1-worker prediction matches a measurement.

        *io_fraction* is the share of the measured time attributed to reading
        the input; the remainder is compute.  This lets the benchmark anchor
        the simulation to real single-node numbers gathered in this repo.
        """
        if measured_seconds <= 0:
            raise GraphError("measured_seconds must be positive")
        if not 0.0 < io_fraction < 1.0:
            raise GraphError("io_fraction must be in (0, 1)")
        usable = measured_seconds - coordination_seconds
        if usable <= 0:
            raise GraphError("coordination overhead exceeds the measurement")
        io_seconds = usable * io_fraction
        compute_seconds = usable - io_seconds
        return ClusterCostModel(
            hdfs_bandwidth_bytes_per_s=(n_rows * self.bytes_per_row) / io_seconds,
            worker_throughput_rows_per_s=n_rows / compute_seconds,
            coordination_overhead_s=coordination_seconds,
            bytes_per_row=self.bytes_per_row,
        )

    @classmethod
    def calibrate(cls, measurements: Sequence[Tuple[int, float]],
                  n_rows: int, bytes_per_row: float = 60.0,
                  io_fraction: float = 0.4) -> "ClusterCostModel":
        """Fit the model to measured ``(n_workers, seconds)`` runs.

        The model is ``t(w) = c + K / w`` (fixed coordination overhead plus
        perfectly divisible scan + compute work), which is linear in
        ``(1, 1/w)`` — a plain least-squares fit over real
        :class:`~repro.graph.remote.RemoteScheduler` runs, replacing the
        fictional default parameters.  *io_fraction* splits the divisible
        seconds ``K`` into scan bandwidth and compute throughput, since
        wall times alone cannot separate the two terms.

        Requires at least two distinct worker counts.  A noisy fit that
        would make a component non-positive is clamped to the nearest
        sensible model: a curve that does not improve with workers (1-core
        machines, contention) becomes almost-all-overhead, and superlinear
        scaling (cache effects pushing the overhead negative) becomes
        pure divisible work with ``K`` the mean of ``w * t(w)``.
        """
        if n_rows <= 0:
            raise GraphError("n_rows must be positive")
        if not 0.0 < io_fraction < 1.0:
            raise GraphError("io_fraction must be in (0, 1)")
        points = [(int(workers), float(seconds))
                  for workers, seconds in measurements]
        if any(workers <= 0 or seconds <= 0 for workers, seconds in points):
            raise GraphError("measurements need positive workers and seconds")
        if len({workers for workers, _ in points}) < 2:
            raise GraphError("calibration needs at least two distinct "
                             "worker counts")
        # Least squares for t = c + K/w via the 2x2 normal equations.
        n = len(points)
        sum_x = sum(1.0 / workers for workers, _ in points)
        sum_xx = sum(1.0 / (workers * workers) for workers, _ in points)
        sum_t = sum(seconds for _, seconds in points)
        sum_xt = sum(seconds / workers for workers, seconds in points)
        det = n * sum_xx - sum_x * sum_x
        if abs(det) < 1e-12:        # unreachable given distinct counts
            raise GraphError("degenerate calibration measurements")
        overhead = (sum_xx * sum_t - sum_x * sum_xt) / det
        divisible = (n * sum_xt - sum_x * sum_t) / det
        if divisible <= 0.0:
            # No improvement (or regression) with workers: model the run
            # as fixed overhead with a token divisible share, so the
            # prediction is flat rather than inventing a speedup.
            mean_t = sum_t / n
            divisible = 0.1 * mean_t
            overhead = 0.9 * mean_t
        elif overhead < 0.0:
            overhead = 0.0
            divisible = sum(workers * seconds
                            for workers, seconds in points) / n
        io_seconds = divisible * io_fraction
        compute_seconds = divisible - io_seconds
        return cls(
            hdfs_bandwidth_bytes_per_s=(n_rows * bytes_per_row) / io_seconds,
            worker_throughput_rows_per_s=n_rows / compute_seconds,
            coordination_overhead_s=overhead,
            bytes_per_row=bytes_per_row,
        )


class SimulatedCluster:
    """Executes partitioned work on N worker threads with simulated I/O.

    .. deprecated::
        Superseded by the real distributed backend: run with
        ``compute.scheduler = "remote"`` (see
        :class:`repro.graph.remote.RemoteScheduler`) to execute partitions
        on actual socket worker processes, and calibrate
        :class:`ClusterCostModel` from those measured runs via
        :meth:`ClusterCostModel.calibrate`.  Kept only for the legacy
        Figure 6(c) shape tests; no new code should depend on it.

    Each partition "read" sleeps for ``partition_bytes / (bandwidth)`` seconds
    before the real computation runs, modelling an HDFS read whose aggregate
    bandwidth is fixed per worker.  The cluster is intentionally tiny — it is
    meant for integration tests and the Fig. 6(c) shape check, not for
    processing genuinely large data.
    """

    def __init__(self, n_workers: int,
                 read_bandwidth_bytes_per_s: float = 50e6,
                 coordination_overhead_s: float = 0.0):
        if n_workers <= 0:
            raise GraphError("n_workers must be positive")
        self.n_workers = int(n_workers)
        self.read_bandwidth_bytes_per_s = float(read_bandwidth_bytes_per_s)
        self.coordination_overhead_s = float(coordination_overhead_s)

    def run(self, partitions: Sequence[Any],
            partition_bytes: Sequence[int],
            work: Callable[[Any], Any]) -> List[Any]:
        """Process partitions on the simulated cluster, returning results in order."""
        if len(partitions) != len(partition_bytes):
            raise GraphError("partitions and partition_bytes must align")
        if self.coordination_overhead_s:
            time.sleep(self.coordination_overhead_s)

        def process(args: tuple[Any, int]) -> Any:
            partition, size = args
            time.sleep(size / self.read_bandwidth_bytes_per_s)
            return work(partition)

        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            return list(pool.map(process, zip(partitions, partition_bytes)))

    def timed_run(self, partitions: Sequence[Any], partition_bytes: Sequence[int],
                  work: Callable[[Any], Any]) -> tuple[List[Any], float]:
        """Like :meth:`run` but also returns the elapsed wall time in seconds."""
        started = time.perf_counter()
        results = self.run(partitions, partition_bytes, work)
        return results, time.perf_counter() - started
