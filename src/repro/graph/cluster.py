"""Simulated multi-worker cluster used to reproduce Figure 6(c).

The paper runs ``create_report`` on an 8-node cluster reading 100M rows from
HDFS and shows that wall time drops as workers are added because the HDFS
read is split across nodes.  Neither a cluster nor HDFS is available here, so
this module provides two complementary substitutes:

* :class:`ClusterCostModel` — an analytical model of the cluster run: total
  time = (scan bytes / aggregate read bandwidth) + (compute work / aggregate
  compute throughput) + fixed per-run coordination overhead.  The parameters
  are calibrated from single-node measurements by the Figure 6(c) benchmark.
* :class:`SimulatedCluster` — a discrete "executor" that actually runs a real
  partitioned computation with N worker threads and injects simulated I/O
  latency per partition, for integration tests that need end-to-end behaviour
  rather than a closed-form estimate.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import GraphError


@dataclass
class ClusterCostModel:
    """Analytical wall-time model for the Figure 6(c) experiment.

    Attributes
    ----------
    hdfs_bandwidth_bytes_per_s:
        Aggregate read bandwidth of ONE worker pulling from HDFS.  Reads
        scale linearly with workers (the paper's explanation for the speedup).
    worker_throughput_rows_per_s:
        Rows per second one worker can process for the report computation.
    coordination_overhead_s:
        Fixed per-run scheduling/driver overhead, independent of workers.
    bytes_per_row:
        On-disk size per row of the workload.
    """

    hdfs_bandwidth_bytes_per_s: float = 200e6
    worker_throughput_rows_per_s: float = 2.5e6
    coordination_overhead_s: float = 15.0
    bytes_per_row: float = 60.0

    def estimate_seconds(self, n_rows: int, n_workers: int) -> float:
        """Estimated wall time of ``create_report`` on the simulated cluster."""
        if n_workers <= 0:
            raise GraphError("n_workers must be positive")
        if n_rows < 0:
            raise GraphError("n_rows must be non-negative")
        io_seconds = (n_rows * self.bytes_per_row) / (
            self.hdfs_bandwidth_bytes_per_s * n_workers)
        compute_seconds = n_rows / (self.worker_throughput_rows_per_s * n_workers)
        return self.coordination_overhead_s + io_seconds + compute_seconds

    def sweep(self, n_rows: int, workers: Sequence[int]) -> List[float]:
        """Estimated wall time for each worker count (the Fig. 6c series)."""
        return [self.estimate_seconds(n_rows, n) for n in workers]

    def calibrate_from_single_node(self, n_rows: int,
                                   measured_seconds: float,
                                   io_fraction: float = 0.4,
                                   coordination_seconds: float = 0.0) -> "ClusterCostModel":
        """Return a model whose 1-worker prediction matches a measurement.

        *io_fraction* is the share of the measured time attributed to reading
        the input; the remainder is compute.  This lets the benchmark anchor
        the simulation to real single-node numbers gathered in this repo.
        """
        if measured_seconds <= 0:
            raise GraphError("measured_seconds must be positive")
        if not 0.0 < io_fraction < 1.0:
            raise GraphError("io_fraction must be in (0, 1)")
        usable = measured_seconds - coordination_seconds
        if usable <= 0:
            raise GraphError("coordination overhead exceeds the measurement")
        io_seconds = usable * io_fraction
        compute_seconds = usable - io_seconds
        return ClusterCostModel(
            hdfs_bandwidth_bytes_per_s=(n_rows * self.bytes_per_row) / io_seconds,
            worker_throughput_rows_per_s=n_rows / compute_seconds,
            coordination_overhead_s=coordination_seconds,
            bytes_per_row=self.bytes_per_row,
        )


class SimulatedCluster:
    """Executes partitioned work on N worker threads with simulated I/O.

    Each partition "read" sleeps for ``partition_bytes / (bandwidth)`` seconds
    before the real computation runs, modelling an HDFS read whose aggregate
    bandwidth is fixed per worker.  The cluster is intentionally tiny — it is
    meant for integration tests and the Fig. 6(c) shape check, not for
    processing genuinely large data.
    """

    def __init__(self, n_workers: int,
                 read_bandwidth_bytes_per_s: float = 50e6,
                 coordination_overhead_s: float = 0.0):
        if n_workers <= 0:
            raise GraphError("n_workers must be positive")
        self.n_workers = int(n_workers)
        self.read_bandwidth_bytes_per_s = float(read_bandwidth_bytes_per_s)
        self.coordination_overhead_s = float(coordination_overhead_s)

    def run(self, partitions: Sequence[Any],
            partition_bytes: Sequence[int],
            work: Callable[[Any], Any]) -> List[Any]:
        """Process partitions on the simulated cluster, returning results in order."""
        if len(partitions) != len(partition_bytes):
            raise GraphError("partitions and partition_bytes must align")
        if self.coordination_overhead_s:
            time.sleep(self.coordination_overhead_s)

        def process(args: tuple[Any, int]) -> Any:
            partition, size = args
            time.sleep(size / self.read_bandwidth_bytes_per_s)
            return work(partition)

        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            return list(pool.map(process, zip(partitions, partition_bytes)))

    def timed_run(self, partitions: Sequence[Any], partition_bytes: Sequence[int],
                  work: Callable[[Any], Any]) -> tuple[List[Any], float]:
        """Like :meth:`run` but also returns the elapsed wall time in seconds."""
        started = time.perf_counter()
        results = self.run(partitions, partition_bytes, work)
        return results, time.perf_counter() - started
