"""Lazy call wrappers (``delayed``) used to build task graphs declaratively.

This mirrors ``dask.delayed``: wrapping a function defers its execution and
records a task in a graph; passing Delayed objects as arguments wires the
dependency edges.  ``compute`` merges the graphs of many Delayed values into
one graph, optimizes it, and executes it — this "single computational graph"
step is the core of the paper's performance optimization (Section 5.2).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.graph.graph import TaskGraph
from repro.graph.optimize import OptimizeStats, optimize
from repro.graph.scheduler import Scheduler, ThreadedScheduler
from repro.graph.task import Task, TaskRef, next_key


class Delayed:
    """A lazily computed value backed by a task graph."""

    __slots__ = ("key", "graph")

    def __init__(self, key: str, graph: TaskGraph):
        self.key = key
        self.graph = graph

    def compute(self, scheduler: Optional[Scheduler] = None,
                enable_cse: bool = True) -> Any:
        """Evaluate just this value."""
        return compute(self, scheduler=scheduler, enable_cse=enable_cse)[0]

    def then(self, func: Callable[..., Any], *args: Any, **kwargs: Any) -> "Delayed":
        """Apply *func* lazily to this value: ``func(self, *args, **kwargs)``."""
        return delayed(func)(self, *args, **kwargs)

    def __repr__(self) -> str:
        return f"Delayed(key={self.key!r}, tasks={len(self.graph)})"


class DelayedCallable:
    """The result of :func:`delayed`: calling it records a task."""

    __slots__ = ("func", "prefix", "pure")

    def __init__(self, func: Callable[..., Any], prefix: Optional[str] = None,
                 pure: bool = True):
        self.func = func
        self.prefix = prefix or getattr(func, "__name__", "task")
        self.pure = pure

    def __call__(self, *args: Any, **kwargs: Any) -> Delayed:
        graph = TaskGraph()
        call_args: List[Any] = []
        for value in args:
            call_args.append(_absorb(value, graph))
        call_kwargs: Dict[str, Any] = {name: _absorb(value, graph)
                                       for name, value in kwargs.items()}
        key = next_key(self.prefix)
        task = Task(key, self.func, tuple(call_args), call_kwargs)
        if not self.pure:
            # Impure tasks must never be merged by CSE; make the token unique.
            task.token = f"{task.token}:{key}"
            task.token_customized = True
        graph.add(task)
        return Delayed(key, graph)


def _absorb(value: Any, graph: TaskGraph) -> Any:
    """Merge nested Delayed arguments into *graph*, replacing them with refs."""
    if isinstance(value, Delayed):
        graph.update(value.graph)
        return TaskRef(value.key)
    if isinstance(value, (list, tuple)):
        absorbed = [_absorb(item, graph) for item in value]
        return type(value)(absorbed) if isinstance(value, tuple) else absorbed
    if isinstance(value, dict):
        return {name: _absorb(item, graph) for name, item in value.items()}
    return value


def delayed(func: Callable[..., Any], prefix: Optional[str] = None,
            pure: bool = True) -> DelayedCallable:
    """Wrap *func* so calls build graph nodes instead of executing.

    ``pure=False`` marks the call as non-deterministic so the CSE pass never
    merges two occurrences.
    """
    return DelayedCallable(func, prefix=prefix, pure=pure)


def merge_graphs(values: Sequence[Delayed]) -> Tuple[TaskGraph, List[str]]:
    """Union the graphs of many Delayed values into a single graph."""
    merged = TaskGraph()
    keys = []
    for value in values:
        merged.update(value.graph)
        keys.append(value.key)
    return merged, keys


def compute(*values: Any, scheduler: Optional[Scheduler] = None,
            enable_cse: bool = True, enable_fusion: bool = False,
            return_stats: bool = False) -> Any:
    """Evaluate many Delayed values against one merged, optimized graph.

    Non-Delayed arguments pass through unchanged, so callers can mix eager
    and lazy values.  When ``return_stats`` is True the optimizer statistics
    are returned as a second value — the ablation benchmarks use this to
    report how many tasks were shared.
    """
    scheduler = scheduler or ThreadedScheduler()
    lazy_positions = [index for index, value in enumerate(values)
                      if isinstance(value, Delayed)]
    lazy_values = [values[index] for index in lazy_positions]

    results: List[Any] = list(values)
    stats = OptimizeStats(input_tasks=0, output_tasks=0)
    if lazy_values:
        graph, keys = merge_graphs(lazy_values)
        optimized, output_map, stats = optimize(
            graph, keys, enable_cse=enable_cse, enable_fusion=enable_fusion)
        canonical_keys = [output_map[key] for key in keys]
        computed = scheduler.execute(optimized, canonical_keys)
        for position, key in zip(lazy_positions, canonical_keys):
            results[position] = computed[key]

    if return_stats:
        return results, stats
    return results
