"""Lazy task-graph execution engine (Dask-style substrate).

The paper's Compute module builds a *single* lazy computational graph per EDA
task so that redundant computations shared by multiple visualizations are
evaluated once, then executes the optimized graph with a parallel scheduler.
The real system uses Dask; the execution environment for this reproduction
does not ship Dask, so this package implements the required subset:

* :class:`~repro.graph.task.Task` / :class:`~repro.graph.graph.TaskGraph` —
  the graph representation.
* :func:`~repro.graph.delayed.delayed` and
  :class:`~repro.graph.delayed.Delayed` — lazy call wrappers used to build
  graphs declaratively.
* :mod:`~repro.graph.optimize` — graph optimizations: culling, common
  sub-expression elimination (the "share computations" optimization) and
  linear-chain fusion.
* :mod:`~repro.graph.scheduler` — the pluggable execution layer: a shared
  scheduling core (cache planning, readiness, result release) with
  synchronous, threaded and true-multiprocess backends, selected by the
  ``compute.scheduler`` config key.
* :mod:`~repro.graph.executor` — where payloads run (thread pool, process
  pool), including the picklability contract and chunk-bundle shipping of
  the process backend.
* :class:`~repro.graph.partition.PartitionedFrame` — a row-chunked DataFrame
  with lazy per-partition map and tree reductions, plus the chunk-size
  precompute stage described in Section 5.2 of the paper.
* :mod:`~repro.graph.engines` — execution strategies compared in Figure 6(a):
  lazy-shared (DataPrep.EDA / Dask), eager per-operation (Modin-like) and
  cluster-RPC with scheduling overhead (Koalas / PySpark-like).
* :mod:`~repro.graph.remote` / :mod:`~repro.graph.wire` — the real
  distributed backend behind Figure 6(c): a coordinator dispatching bundles
  to socket workers (spawned locally or attached from other hosts) over a
  checksummed, length-prefixed TCP protocol with heartbeat-based failure
  detection and bundle re-dispatch.
* :mod:`~repro.graph.cluster` — the analytical multi-worker cluster + HDFS
  cost model (now calibrated from measured RemoteScheduler runs) and the
  deprecated Figure 6(c) thread-pool simulation it replaces.
* :mod:`~repro.graph.cache` — the cross-call intermediate cache: stable,
  content-addressed task keys plus a bounded LRU store the schedulers
  consult before executing, so interactive sessions that iterate over the
  same frame skip work already done by earlier calls.
"""

from repro.graph.cache import (
    CacheStats,
    TaskCache,
    assign_cache_keys,
    clear_global_cache,
    get_global_cache,
    set_global_cache,
)
from repro.graph.task import Task, TaskRef, tokenize
from repro.graph.graph import TaskGraph
from repro.graph.delayed import Delayed, compute, delayed
from repro.graph.optimize import common_subexpression_elimination, cull, fuse_linear_chains, optimize
from repro.graph.executor import Executor, ProcessExecutor, ThreadExecutor
from repro.graph.scheduler import (
    ProcessScheduler,
    Scheduler,
    SynchronousScheduler,
    ThreadedScheduler,
    available_schedulers,
    get_scheduler,
)
from repro.graph.partition import (
    PartitionedFrame,
    precompute_chunk_sizes,
    precompute_csv_chunks,
)
from repro.graph.engines import (
    ClusterRPCEngine,
    EagerEngine,
    Engine,
    LazyEngine,
    available_engines,
    get_engine,
)
from repro.graph.cluster import ClusterCostModel, SimulatedCluster

#: Remote-backend names resolved on first attribute access (PEP 562): an
#: eager import here would make `python -m repro.graph.remote` — the worker
#: entry point — execute the module twice (once via this package import,
#: once as __main__).
_REMOTE_EXPORTS = ("RemoteExecutor", "RemoteScheduler", "shutdown_remote_pools")


def __getattr__(name):
    if name in _REMOTE_EXPORTS:
        from repro.graph import remote
        return getattr(remote, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CacheStats",
    "ClusterCostModel",
    "ClusterRPCEngine",
    "Delayed",
    "EagerEngine",
    "Engine",
    "Executor",
    "LazyEngine",
    "PartitionedFrame",
    "ProcessExecutor",
    "ProcessScheduler",
    "RemoteExecutor",
    "RemoteScheduler",
    "Scheduler",
    "SimulatedCluster",
    "SynchronousScheduler",
    "ThreadExecutor",
    "Task",
    "TaskCache",
    "TaskGraph",
    "TaskRef",
    "ThreadedScheduler",
    "assign_cache_keys",
    "available_engines",
    "available_schedulers",
    "clear_global_cache",
    "common_subexpression_elimination",
    "compute",
    "cull",
    "delayed",
    "fuse_linear_chains",
    "get_engine",
    "get_global_cache",
    "get_scheduler",
    "optimize",
    "precompute_chunk_sizes",
    "precompute_csv_chunks",
    "set_global_cache",
    "shutdown_remote_pools",
    "tokenize",
]
