"""Schedulers that execute a TaskGraph and return requested outputs.

The execution layer is split in two:

* a :class:`Scheduler` decides *what* runs and in which order — cache
  planning, readiness tracking, result release and run statistics live in
  the shared :class:`Scheduler` base and :class:`_ExecutionState`, so every
  backend accounts for work identically;
* an :class:`~repro.graph.executor.Executor` decides *where* payloads run —
  inline, on a thread pool, or on a process pool.

Three schedulers are registered: :class:`SynchronousScheduler` (in-order,
single-threaded), :class:`ThreadedScheduler` (the default; GIL-sharing
workers suit numpy-dominated tasks) and :class:`ProcessScheduler` (true
multi-core parallelism for pure-Python chunk work such as streaming CSV
parsing — see the hybrid-dispatch notes on the class).

Every scheduler can carry a :class:`~repro.graph.cache.TaskCache`.  When one
is attached, execution starts with a cache-planning pass: every task gets a
stable cache key, tasks whose results are already cached are served without
running, and their exclusive ancestors are skipped entirely — the cross-call
analogue of the cull optimization.  Freshly computed results are stored back
so the next call (possibly a different EDA function on the same frame) can
reuse them.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SchedulerError
from repro.graph.cache import TaskCache, assign_cache_keys
from repro.graph.executor import (
    BundleOutcome,
    Executor,
    ProcessExecutor,
    ThreadExecutor,
    can_run_in_worker,
    run_task_bundle,
)
from repro.graph.graph import TaskGraph
from repro.utils import (
    classify_parse_key,
    default_worker_count,
    parse_task_byte_span,
)


@dataclass
class RunStats:
    """What one ``execute`` call did, including cache-based work avoidance."""

    planned: int = 0       # tasks in the (already optimized) graph
    executed: int = 0      # tasks actually run
    cache_hits: int = 0    # tasks served straight from the cache
    skipped: int = 0       # ancestors never visited because a hit covered them
    released: int = 0      # intermediate results freed once fully consumed
    shipped: int = 0       # tasks dispatched to worker processes (ProcessScheduler)
    projected_parses: int = 0  # executed partition tasks carrying a projection
    full_parses: int = 0       # executed partition tasks parsing every column
    # The two predicate-pushdown counters are planning-side facts the
    # compute layer attaches after the run (the scheduler sees only task
    # keys): chunks the zone maps let the planner drop before any bytes
    # were read, and rows the pushed-down filters removed inside the
    # executed parse tasks.
    chunks_skipped: int = 0
    rows_filtered: int = 0
    # Parsed-chunk disk sidecar counters, attached by the compute layer
    # after the run like the predicate counters above: chunks served from
    # the binary sidecar instead of decoding CSV, chunks that had to
    # decode, and the CSV bytes the hits avoided.  Coordinator-process
    # counts only — ProcessScheduler workers keep their own (see
    # repro.frame.sidecar).
    sidecar_hits: int = 0
    sidecar_misses: int = 0
    bytes_decoded_avoided: int = 0
    # Incremental-refresh accounting over the partition parse tasks only:
    # chunks whose stable (per-chunk content stamp) cache key answered
    # without running, chunks that did execute, and the file bytes those
    # executions read.  After an append+refresh, chunks_reused ≈ the old
    # chunks and chunks_new ≈ the appended ones — the observable form of
    # "re-parse only the delta".
    chunks_reused: int = 0
    chunks_new: int = 0
    bytes_reparsed: int = 0
    # Remote-backend wire accounting (RemoteScheduler only; zero elsewhere):
    # bytes of task frames shipped to socket workers, bytes of result frames
    # received back, bundles re-dispatched after a worker was lost, and the
    # fraction of the run each worker spent computing ({worker id: 0..1}).
    shipped_bytes: int = 0
    bytes_received: int = 0
    redispatched: int = 0
    worker_utilization: Dict[str, float] = field(default_factory=dict)


@dataclass
class CachePlan:
    """Result of the cache-planning pass: what to run, what is prefilled."""

    results: Dict[str, Any] = field(default_factory=dict)
    needed: Set[str] = field(default_factory=set)
    keys: Dict[str, Optional[str]] = field(default_factory=dict)


class _ExecutionState:
    """Bookkeeping of one ``execute`` call, shared by every scheduler.

    Owns the cache plan, the result dict, the readiness counters and the
    consumer refcounts; :meth:`complete` is the single place a finished
    task's result is recorded, cached, released and propagated to its
    dependents — so the three schedulers cannot drift apart on any of it.
    """

    def __init__(self, scheduler: "Scheduler", graph: TaskGraph,
                 outputs: Sequence[str]):
        self.graph = graph
        self.scheduler = scheduler
        self.outputs = list(outputs)
        self.output_set = set(outputs)
        self.order = graph.toposort()          # validates the graph too
        self.position = {key: index for index, key in enumerate(self.order)}
        self.plan = scheduler.plan_with_cache(graph, outputs)
        if self.plan is None:
            self.needed: Set[str] = set(graph.keys())
            self.results: Dict[str, Any] = {}
        else:
            self.needed = self.plan.needed
            self.results = dict(self.plan.results)
        self.counts = scheduler.consumer_counts(graph, self.needed)
        self.dependents = graph.dependents()
        prefilled = set(self.results)
        self.remaining = {
            key: len(set(graph.dependencies(key)) - prefilled)
            for key in self.needed}
        #: Guards ``results`` mutation when worker threads read it concurrently.
        self.lock = threading.Lock()

    def initial_ready(self) -> List[str]:
        """Dependency-free tasks, as a stack popping in graph order.

        Seeded in reverse topological order so ``pop()`` serves sources in
        graph order.  ``needed`` is a set; seeding in its (hash) order would
        complete e.g. CSV partition parses at random positions, and every
        fan-in combine group would then wait on a straggler — accumulating
        nearly all chunk results at once.  In graph order, adjacent
        partitions finish together, each combine collapses as soon as its
        group is done, and the release pass keeps the live set small.

        Bundle members never appear here: a member always has exactly one
        dependency (its bundle root, which is needed, hence not prefilled),
        so its remaining count starts at 1.
        """
        ready = [key for key, count in self.remaining.items() if count == 0]
        return sorted(ready, key=self.position.get, reverse=True)

    def complete(self, key: str, value: Any, returned: bool = True) -> List[str]:
        """Record a finished task and return the keys it made ready.

        ``returned=False`` marks a task whose value deliberately never
        reached the coordinator (a bundle root consumed entirely inside its
        worker): dependents are still unblocked and refcounts still drop,
        but nothing is stored or cached.
        """
        if returned:
            self.results[key] = value
            self.scheduler.store_result(self.plan, key, value)
        run = self.scheduler.last_run
        if run is not None:
            # Partition materializations are the projection pushdown's hot
            # path; count them per kind so the win is observable per run.
            kind = classify_parse_key(key)
            if kind == "projected":
                run.projected_parses += 1
            elif kind == "full":
                run.full_parses += 1
            if kind is not None:
                # Every parse that reaches complete() actually ran (cache
                # hits are prefilled, never completed) — the delta side of
                # the chunks_reused subtraction in plan_with_cache.
                run.chunks_new += 1
                run.bytes_reparsed += parse_task_byte_span(
                    self.graph[key].args)
        newly_ready: List[str] = []
        for consumer in self.dependents.get(key, ()):
            if consumer not in self.remaining:
                continue
            self.remaining[consumer] -= 1
            if self.remaining[consumer] == 0:
                newly_ready.append(consumer)
        self.scheduler.release_consumed(key, self.graph, self.counts,
                                        self.results, self.output_set)
        return newly_ready

    def collect(self) -> Dict[str, Any]:
        """The requested outputs, or a :class:`SchedulerError` if one is missing."""
        missing = [key for key in self.outputs if key not in self.results]
        if missing:
            raise SchedulerError(missing[0], KeyError("output not produced"))
        return {key: self.results[key] for key in self.outputs}


class Scheduler:
    """Base class for graph schedulers."""

    #: Human-readable name used by the engine registry and benchmarks.
    name = "base"

    #: Optional cross-call intermediate cache consulted before execution.
    cache: Optional[TaskCache] = None

    #: Statistics of the most recent ``execute`` call (None before the first).
    last_run: Optional[RunStats] = None

    def execute(self, graph: TaskGraph, outputs: Sequence[str]) -> Dict[str, Any]:
        """Execute *graph* and return ``{output key: value}``."""
        raise NotImplementedError

    def get(self, graph: TaskGraph, outputs: Sequence[str]) -> List[Any]:
        """Execute and return output values in request order."""
        results = self.execute(graph, outputs)
        return [results[key] for key in outputs]

    def close(self) -> None:
        """Release any worker pool held by this scheduler (idempotent)."""

    # ------------------------------------------------------------------ #
    # Cache planning (shared by all schedulers)
    # ------------------------------------------------------------------ #
    def plan_with_cache(self, graph: TaskGraph,
                        outputs: Sequence[str]) -> Optional[CachePlan]:
        """Consult the cache and decide which tasks still need to run.

        Walks the graph top-down from *outputs*: a task whose stable cache
        key hits is prefilled into the plan's results and its dependencies
        are not visited, so the whole subtree feeding only that task is
        skipped.  Returns None when no cache is attached (run everything);
        always records :attr:`last_run`.
        """
        total = len(graph)
        if self.cache is None:
            self.last_run = RunStats(planned=total, executed=total)
            return None
        plan = CachePlan(keys=assign_cache_keys(graph))
        pending = list(outputs)
        seen: Set[str] = set()
        while pending:
            key = pending.pop()
            if key in seen:
                continue
            seen.add(key)
            cache_key = plan.keys.get(key)
            if cache_key is not None:
                hit, value = self.cache.lookup(cache_key)
                if hit:
                    plan.results[key] = value
                    continue
            plan.needed.add(key)
            pending.extend(graph.dependencies(key))
        # chunks_reused counts by subtraction over the whole graph, not by
        # visited hits: a combine-level cache hit skips its parse subtree
        # without the walk ever visiting those parse keys.
        parse_total = sum(1 for key in graph.keys()
                          if classify_parse_key(key) is not None)
        parse_needed = sum(1 for key in plan.needed
                           if classify_parse_key(key) is not None)
        self.last_run = RunStats(
            planned=total, executed=len(plan.needed),
            cache_hits=len(plan.results),
            skipped=total - len(plan.needed) - len(plan.results),
            chunks_reused=parse_total - parse_needed)
        return plan

    def store_result(self, plan: Optional[CachePlan], key: str, value: Any) -> None:
        """Store a freshly computed result under its stable cache key."""
        if plan is None or self.cache is None:
            return
        cache_key = plan.keys.get(key)
        if cache_key is not None:
            self.cache.put(cache_key, value)

    # ------------------------------------------------------------------ #
    # Result lifetime (shared by all schedulers)
    # ------------------------------------------------------------------ #
    @staticmethod
    def consumer_counts(graph: TaskGraph, needed: Set[str]) -> Dict[str, int]:
        """How many still-to-run tasks consume each result.

        Only tasks in *needed* count as consumers: cache-prefilled tasks
        never execute, so they never read their dependencies.
        """
        counts: Dict[str, int] = {}
        for key in needed:
            for dependency in set(graph.dependencies(key)):
                counts[dependency] = counts.get(dependency, 0) + 1
        return counts

    def release_consumed(self, finished: str, graph: TaskGraph,
                         counts: Dict[str, int], results: Dict[str, Any],
                         outputs: Set[str]) -> None:
        """Drop dependency results of *finished* once nothing else needs them.

        This is what keeps an out-of-core scan's peak memory proportional to
        the chunk size: a parsed partition is freed as soon as the sketches
        consuming it have run, instead of living until the whole graph ends.
        Requested outputs are always kept.
        """
        for dependency in set(graph.dependencies(finished)):
            remaining = counts.get(dependency)
            if remaining is None:
                continue
            counts[dependency] = remaining - 1
            if counts[dependency] <= 0 and dependency not in outputs:
                if results.pop(dependency, None) is not None and \
                        self.last_run is not None:
                    self.last_run.released += 1


class SynchronousScheduler(Scheduler):
    """Single-threaded scheduler executing tasks in topological order.

    Optionally injects a fixed per-task dispatch latency, which the engine
    comparison benchmark (Figure 6a) uses to model RPC-style scheduling
    overhead of cluster frameworks running on a single node.  Accepts (and
    ignores) ``max_workers`` so the engine layer can construct any
    registered scheduler with one uniform signature.
    """

    name = "synchronous"

    def __init__(self, dispatch_latency: float = 0.0,
                 cache: Optional[TaskCache] = None,
                 max_workers: Optional[int] = None):
        self.dispatch_latency = float(dispatch_latency)
        self.cache = cache

    def execute(self, graph: TaskGraph, outputs: Sequence[str]) -> Dict[str, Any]:
        state = _ExecutionState(self, graph, outputs)
        for key in state.order:
            if key not in state.needed:
                continue
            if self.dispatch_latency:
                time.sleep(self.dispatch_latency)
            try:
                value = graph[key].execute(state.results)
            except Exception as error:  # noqa: BLE001 - rewrapped with task context
                raise SchedulerError(key, error) from error
            state.complete(key, value)
        return state.collect()


@dataclass(frozen=True)
class WorkUnit:
    """One dispatchable unit: a task, optionally bundled with members.

    ``ship=True`` sends the unit to the scheduler's executor; ``ship=False``
    runs it inline on the coordinator thread.  ``members`` (process backend
    only) are single-dependency consumers executed in the same worker
    against the root's value; ``return_root`` says whether the root's value
    must travel back to the coordinator at all.
    """

    root: str
    members: Tuple[str, ...] = ()
    ship: bool = True
    return_root: bool = True


class _PoolScheduler(Scheduler):
    """Shared driver loop for schedulers that dispatch onto an Executor.

    Subclasses provide the unit plan (:meth:`_plan_units`), the submission
    payload (:meth:`_submit_unit`) and the result absorption
    (:meth:`_absorb_unit`); the loop itself — bounded in-flight window,
    depth-first ready stack, failure propagation, release — is written once
    here instead of once per backend.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 cache: Optional[TaskCache] = None):
        self.max_workers = int(max_workers) if max_workers is not None \
            else default_worker_count()
        self.cache = cache
        self._executor: Optional[Executor] = None

    # -- hooks ---------------------------------------------------------- #
    def _make_executor(self) -> Executor:
        raise NotImplementedError

    def _plan_units(self, state: _ExecutionState) -> Dict[str, WorkUnit]:
        """Map every needed task to its unit (bundle members excluded)."""
        return {key: WorkUnit(key) for key in state.needed}

    def _submit_unit(self, unit: WorkUnit, state: _ExecutionState) -> Future:
        raise NotImplementedError

    def _absorb_unit(self, unit: WorkUnit, payload: Any,
                     state: _ExecutionState) -> List[str]:
        """Fold a finished unit's payload into the state; return newly ready."""
        raise NotImplementedError

    def _inflight_cap(self) -> int:
        """How many shipped units may be in flight at once.

        The in-process pools keep this at ``max_workers`` (one unit per
        worker); the remote backend widens it so a worker always has the
        next bundle queued while its previous result is in transit.
        """
        return self.max_workers

    def _run_inline(self, unit: WorkUnit, state: _ExecutionState) -> List[str]:
        """Run a non-shipped unit on the coordinator thread."""
        try:
            value = state.graph[unit.root].execute(state.results)
        except Exception as error:  # noqa: BLE001 - rewrapped with task context
            raise SchedulerError(unit.root, error) from error
        with state.lock:
            return state.complete(unit.root, value)

    # -- lifecycle ------------------------------------------------------ #
    def executor(self) -> Executor:
        """The lazily created executor backing this scheduler."""
        if self._executor is None:
            self._executor = self._make_executor()
        return self._executor

    def close(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- the driver loop ------------------------------------------------ #
    def execute(self, graph: TaskGraph, outputs: Sequence[str]) -> Dict[str, Any]:
        state = _ExecutionState(self, graph, outputs)
        units = self._plan_units(state)
        # Submit at most max_workers units at a time, popping the most
        # recently enabled first (depth-first).  Submitting the whole ready
        # list would run every source task (e.g. CSV chunk parse) before any
        # consumer, accumulating the entire input in memory; capping keeps
        # newly enabled sketch/combine tasks ahead of still-queued parses,
        # so chunks are consumed and released at the rate they are produced.
        ready = state.initial_ready()
        in_flight: Dict[Future, WorkUnit] = {}
        try:
            while ready or in_flight:
                # Re-read the cap every round: the remote backend widens it
                # as workers attach mid-run (attach-only pools start at 0).
                inflight_cap = self._inflight_cap()
                while ready and len(in_flight) < inflight_cap:
                    unit = units[ready.pop()]
                    if unit.ship:
                        try:
                            future = self._submit_unit(unit, state)
                        except Exception as error:  # noqa: BLE001
                            # submit() itself can raise synchronously — e.g.
                            # BrokenProcessPool when a worker died between
                            # waits.  Discard the pool so the next execute
                            # starts fresh, and report the task like any
                            # other pool-level failure.
                            if self._executor is not None:
                                self._executor.discard()
                            raise SchedulerError(unit.root, error) from error
                        in_flight[future] = unit
                    else:
                        ready.extend(self._run_inline(unit, state))
                if not in_flight:
                    continue
                done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                for future in done:
                    unit = in_flight.pop(future)
                    error = future.exception()
                    if error is not None:
                        # Pool-level failure (a crashed worker, an
                        # unpicklable payload): name the unit's root task
                        # and let a broken pool be rebuilt next time.
                        if self._executor is not None:
                            self._executor.discard()
                        raise SchedulerError(unit.root, error) from error
                    ready.extend(self._absorb_unit(unit, future.result(), state))
        except BaseException:
            for pending in in_flight:
                pending.cancel()
            raise
        return state.collect()


class ThreadedScheduler(_PoolScheduler):
    """Thread-pool scheduler that runs independent tasks concurrently.

    This is the default execution backend, mirroring Dask's threaded
    scheduler: EDA computations are numpy-dominated so threads parallelize
    well despite the GIL.
    """

    name = "threaded"

    def __init__(self, max_workers: Optional[int] = None,
                 dispatch_latency: float = 0.0,
                 cache: Optional[TaskCache] = None):
        super().__init__(max_workers=max_workers, cache=cache)
        self.dispatch_latency = float(dispatch_latency)

    def _make_executor(self) -> Executor:
        return ThreadExecutor(max_workers=self.max_workers)

    def _run_task(self, key: str, state: _ExecutionState) -> Any:
        if self.dispatch_latency:
            time.sleep(self.dispatch_latency)
        return state.graph[key].execute(state.results)

    def _submit_unit(self, unit: WorkUnit, state: _ExecutionState) -> Future:
        return self.executor().submit(self._run_task, unit.root, state)

    def _absorb_unit(self, unit: WorkUnit, payload: Any,
                     state: _ExecutionState) -> List[str]:
        # Every consumer of this task's dependencies that will ever run has
        # been submitted or finished only when its own result is in;
        # dropping fully consumed inputs here keeps peak memory at
        # (workers x chunk), not the file.
        with state.lock:
            return state.complete(unit.root, payload)


class ProcessScheduler(_PoolScheduler):
    """Process-pool scheduler: true multi-core parallelism for chunk work.

    Pure-Python chunk tasks — above all the streaming CSV parse + sketch
    path — are GIL-bound, so threads cannot scale them across cores.  This
    scheduler ships them to a ``ProcessPoolExecutor`` instead, with a
    **hybrid dispatch** (see :mod:`repro.graph.executor`):

    * a dependency-free task whose payload is picklable **by value** (the
      ``can_run_in_worker`` contract: module-level function, plain-value
      arguments, bounded size) becomes a bundle root; every sketch task
      consuming only it joins the bundle and runs in the same worker, so a
      parsed chunk crosses the process boundary only when a
      coordinator-side task still needs it;
    * everything else — combine/finalize merges, tasks closing over
      in-memory frames, closures — runs inline on the coordinator thread,
      so tiny graphs never drown in IPC and in-memory inputs behave
      exactly like the synchronous scheduler.

    Failure semantics: a task raising in a worker propagates as a
    :class:`SchedulerError` naming that task; a crashed worker process
    (``BrokenProcessPool``) propagates as a :class:`SchedulerError` naming
    the bundle's root and discards the pool so the next run starts fresh —
    execution never hangs on a dead worker.
    """

    name = "process"

    def _make_executor(self) -> Executor:
        return ProcessExecutor(max_workers=self.max_workers)

    def _plan_units(self, state: _ExecutionState) -> Dict[str, WorkUnit]:
        graph = state.graph
        units: Dict[str, WorkUnit] = {}
        bundled: Set[str] = set()
        for key in state.order:                    # roots precede consumers
            if key not in state.needed or key in bundled:
                continue
            task = graph[key]
            if task.dependencies() or not can_run_in_worker(task):
                units[key] = WorkUnit(key, ship=False)
                continue
            members: List[str] = []
            needed_consumers = sorted(
                (consumer for consumer in state.dependents.get(key, ())
                 if consumer in state.needed),
                key=state.position.get)
            for consumer in needed_consumers:
                consumer_task = graph[consumer]
                if set(consumer_task.dependencies()) == {key} and \
                        can_run_in_worker(consumer_task):
                    members.append(consumer)
                    bundled.add(consumer)
            member_set = set(members)
            return_root = key in state.output_set or not needed_consumers or \
                any(consumer not in member_set for consumer in needed_consumers)
            units[key] = WorkUnit(key, tuple(members), ship=True,
                                  return_root=return_root)
        return units

    def _submit_unit(self, unit: WorkUnit, state: _ExecutionState) -> Future:
        graph = state.graph
        if self.last_run is not None:
            self.last_run.shipped += 1 + len(unit.members)
        return self.executor().submit(
            run_task_bundle, graph[unit.root],
            [graph[key] for key in unit.members], unit.return_root)

    def _absorb_unit(self, unit: WorkUnit, payload: BundleOutcome,
                     state: _ExecutionState) -> List[str]:
        if payload.error_key is not None:
            raise SchedulerError(payload.error_key, payload.error) \
                from payload.error
        member_set = set(unit.members)
        newly = state.complete(unit.root, payload.root,
                               returned=unit.return_root)
        ready = [key for key in newly if key not in member_set]
        for key in unit.members:
            ready.extend(state.complete(key, payload.members[key]))
        return ready


_SCHEDULERS = {
    SynchronousScheduler.name: SynchronousScheduler,
    ThreadedScheduler.name: ThreadedScheduler,
    ProcessScheduler.name: ProcessScheduler,
}

#: Backends resolved by deferred import: remote.py imports this module for
#: ProcessScheduler, so registering its class eagerly would be a cycle.
_LAZY_SCHEDULERS = ("remote",)


def available_schedulers() -> List[str]:
    """Names of the registered schedulers (the ``compute.scheduler`` choices)."""
    return sorted(tuple(_SCHEDULERS) + _LAZY_SCHEDULERS)


def get_scheduler(name: str = "threaded", **kwargs: Any) -> Scheduler:
    """Instantiate a scheduler by name.

    ``"synchronous"``, ``"threaded"``, ``"process"`` or ``"remote"`` — the
    same choices the ``compute.scheduler`` config key accepts.
    """
    if name == "remote" and name not in _SCHEDULERS:
        from repro.graph.remote import RemoteScheduler
        _SCHEDULERS[RemoteScheduler.name] = RemoteScheduler
    try:
        factory = _SCHEDULERS[name]
    except KeyError:
        raise SchedulerError(name, KeyError(f"unknown scheduler {name!r}")) from None
    return factory(**kwargs)
