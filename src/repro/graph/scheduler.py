"""Schedulers that execute a TaskGraph and return requested outputs."""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import SchedulerError
from repro.graph.graph import TaskGraph


class Scheduler:
    """Base class for graph schedulers."""

    #: Human-readable name used by the engine registry and benchmarks.
    name = "base"

    def execute(self, graph: TaskGraph, outputs: Sequence[str]) -> Dict[str, Any]:
        """Execute *graph* and return ``{output key: value}``."""
        raise NotImplementedError

    def get(self, graph: TaskGraph, outputs: Sequence[str]) -> List[Any]:
        """Execute and return output values in request order."""
        results = self.execute(graph, outputs)
        return [results[key] for key in outputs]


class SynchronousScheduler(Scheduler):
    """Single-threaded scheduler executing tasks in topological order.

    Optionally injects a fixed per-task dispatch latency, which the engine
    comparison benchmark (Figure 6a) uses to model RPC-style scheduling
    overhead of cluster frameworks running on a single node.
    """

    name = "synchronous"

    def __init__(self, dispatch_latency: float = 0.0):
        self.dispatch_latency = float(dispatch_latency)

    def execute(self, graph: TaskGraph, outputs: Sequence[str]) -> Dict[str, Any]:
        order = graph.toposort()
        results: Dict[str, Any] = {}
        for key in order:
            if self.dispatch_latency:
                time.sleep(self.dispatch_latency)
            task = graph[key]
            try:
                results[key] = task.execute(results)
            except Exception as error:  # noqa: BLE001 - rewrapped with task context
                raise SchedulerError(key, error) from error
        missing = [key for key in outputs if key not in results]
        if missing:
            raise SchedulerError(missing[0], KeyError("output not produced"))
        return {key: results[key] for key in outputs}


class ThreadedScheduler(Scheduler):
    """Thread-pool scheduler that runs independent tasks concurrently.

    This is the default execution backend, mirroring Dask's threaded
    scheduler: EDA computations are numpy-dominated so threads parallelize
    well despite the GIL.
    """

    name = "threaded"

    def __init__(self, max_workers: Optional[int] = None,
                 dispatch_latency: float = 0.0):
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 4)
        self.max_workers = int(max_workers)
        self.dispatch_latency = float(dispatch_latency)

    def execute(self, graph: TaskGraph, outputs: Sequence[str]) -> Dict[str, Any]:
        graph.validate()
        dependents = graph.dependents()
        remaining: Dict[str, int] = {
            key: len(set(graph.dependencies(key))) for key in graph.keys()}
        results: Dict[str, Any] = {}
        lock = threading.Lock()

        ready = [key for key, count in remaining.items() if count == 0]
        in_flight: Dict[Future, str] = {}

        def run_task(key: str) -> Any:
            if self.dispatch_latency:
                time.sleep(self.dispatch_latency)
            return graph[key].execute(results)

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            while ready or in_flight:
                while ready:
                    key = ready.pop()
                    in_flight[pool.submit(run_task, key)] = key
                done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                for future in done:
                    key = in_flight.pop(future)
                    error = future.exception()
                    if error is not None:
                        for pending in in_flight:
                            pending.cancel()
                        raise SchedulerError(key, error) from error
                    with lock:
                        results[key] = future.result()
                    for consumer in dependents.get(key, ()):
                        remaining[consumer] -= 1
                        if remaining[consumer] == 0:
                            ready.append(consumer)

        missing = [key for key in outputs if key not in results]
        if missing:
            raise SchedulerError(missing[0], KeyError("output not produced"))
        return {key: results[key] for key in outputs}


_SCHEDULERS = {
    SynchronousScheduler.name: SynchronousScheduler,
    ThreadedScheduler.name: ThreadedScheduler,
}


def get_scheduler(name: str = "threaded", **kwargs: Any) -> Scheduler:
    """Instantiate a scheduler by name (``"synchronous"`` or ``"threaded"``)."""
    try:
        factory = _SCHEDULERS[name]
    except KeyError:
        raise SchedulerError(name, KeyError(f"unknown scheduler {name!r}")) from None
    return factory(**kwargs)
