"""Schedulers that execute a TaskGraph and return requested outputs.

Both schedulers can carry a :class:`~repro.graph.cache.TaskCache`.  When one
is attached, execution starts with a cache-planning pass: every task gets a
stable cache key, tasks whose results are already cached are served without
running, and their exclusive ancestors are skipped entirely — the cross-call
analogue of the cull optimization.  Freshly computed results are stored back
so the next call (possibly a different EDA function on the same frame) can
reuse them.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.errors import SchedulerError
from repro.graph.cache import TaskCache, assign_cache_keys
from repro.graph.graph import TaskGraph


@dataclass
class RunStats:
    """What one ``execute`` call did, including cache-based work avoidance."""

    planned: int = 0       # tasks in the (already optimized) graph
    executed: int = 0      # tasks actually run
    cache_hits: int = 0    # tasks served straight from the cache
    skipped: int = 0       # ancestors never visited because a hit covered them
    released: int = 0      # intermediate results freed once fully consumed


@dataclass
class CachePlan:
    """Result of the cache-planning pass: what to run, what is prefilled."""

    results: Dict[str, Any] = field(default_factory=dict)
    needed: Set[str] = field(default_factory=set)
    keys: Dict[str, Optional[str]] = field(default_factory=dict)


class Scheduler:
    """Base class for graph schedulers."""

    #: Human-readable name used by the engine registry and benchmarks.
    name = "base"

    #: Optional cross-call intermediate cache consulted before execution.
    cache: Optional[TaskCache] = None

    #: Statistics of the most recent ``execute`` call (None before the first).
    last_run: Optional[RunStats] = None

    def execute(self, graph: TaskGraph, outputs: Sequence[str]) -> Dict[str, Any]:
        """Execute *graph* and return ``{output key: value}``."""
        raise NotImplementedError

    def get(self, graph: TaskGraph, outputs: Sequence[str]) -> List[Any]:
        """Execute and return output values in request order."""
        results = self.execute(graph, outputs)
        return [results[key] for key in outputs]

    # ------------------------------------------------------------------ #
    # Cache planning (shared by both schedulers)
    # ------------------------------------------------------------------ #
    def plan_with_cache(self, graph: TaskGraph,
                        outputs: Sequence[str]) -> Optional[CachePlan]:
        """Consult the cache and decide which tasks still need to run.

        Walks the graph top-down from *outputs*: a task whose stable cache
        key hits is prefilled into the plan's results and its dependencies
        are not visited, so the whole subtree feeding only that task is
        skipped.  Returns None when no cache is attached (run everything);
        always records :attr:`last_run`.
        """
        total = len(graph)
        if self.cache is None:
            self.last_run = RunStats(planned=total, executed=total)
            return None
        plan = CachePlan(keys=assign_cache_keys(graph))
        pending = list(outputs)
        seen: Set[str] = set()
        while pending:
            key = pending.pop()
            if key in seen:
                continue
            seen.add(key)
            cache_key = plan.keys.get(key)
            if cache_key is not None:
                hit, value = self.cache.lookup(cache_key)
                if hit:
                    plan.results[key] = value
                    continue
            plan.needed.add(key)
            pending.extend(graph.dependencies(key))
        self.last_run = RunStats(
            planned=total, executed=len(plan.needed),
            cache_hits=len(plan.results),
            skipped=total - len(plan.needed) - len(plan.results))
        return plan

    def store_result(self, plan: Optional[CachePlan], key: str, value: Any) -> None:
        """Store a freshly computed result under its stable cache key."""
        if plan is None or self.cache is None:
            return
        cache_key = plan.keys.get(key)
        if cache_key is not None:
            self.cache.put(cache_key, value)

    # ------------------------------------------------------------------ #
    # Result lifetime (shared by both schedulers)
    # ------------------------------------------------------------------ #
    @staticmethod
    def consumer_counts(graph: TaskGraph, needed: Set[str]) -> Dict[str, int]:
        """How many still-to-run tasks consume each result.

        Only tasks in *needed* count as consumers: cache-prefilled tasks
        never execute, so they never read their dependencies.
        """
        counts: Dict[str, int] = {}
        for key in needed:
            for dependency in set(graph.dependencies(key)):
                counts[dependency] = counts.get(dependency, 0) + 1
        return counts

    def release_consumed(self, finished: str, graph: TaskGraph,
                         counts: Dict[str, int], results: Dict[str, Any],
                         outputs: Set[str]) -> None:
        """Drop dependency results of *finished* once nothing else needs them.

        This is what keeps an out-of-core scan's peak memory proportional to
        the chunk size: a parsed partition is freed as soon as the sketches
        consuming it have run, instead of living until the whole graph ends.
        Requested outputs are always kept.
        """
        for dependency in set(graph.dependencies(finished)):
            remaining = counts.get(dependency)
            if remaining is None:
                continue
            counts[dependency] = remaining - 1
            if counts[dependency] <= 0 and dependency not in outputs:
                if results.pop(dependency, None) is not None and \
                        self.last_run is not None:
                    self.last_run.released += 1


class SynchronousScheduler(Scheduler):
    """Single-threaded scheduler executing tasks in topological order.

    Optionally injects a fixed per-task dispatch latency, which the engine
    comparison benchmark (Figure 6a) uses to model RPC-style scheduling
    overhead of cluster frameworks running on a single node.
    """

    name = "synchronous"

    def __init__(self, dispatch_latency: float = 0.0,
                 cache: Optional[TaskCache] = None):
        self.dispatch_latency = float(dispatch_latency)
        self.cache = cache

    def execute(self, graph: TaskGraph, outputs: Sequence[str]) -> Dict[str, Any]:
        order = graph.toposort()
        plan = self.plan_with_cache(graph, outputs)
        results: Dict[str, Any] = dict(plan.results) if plan else {}
        needed = plan.needed if plan is not None else set(graph.keys())
        output_set = set(outputs)
        counts = self.consumer_counts(graph, needed)
        for key in order:
            if plan is not None and key not in plan.needed:
                continue
            if self.dispatch_latency:
                time.sleep(self.dispatch_latency)
            task = graph[key]
            try:
                results[key] = task.execute(results)
            except Exception as error:  # noqa: BLE001 - rewrapped with task context
                raise SchedulerError(key, error) from error
            self.store_result(plan, key, results[key])
            self.release_consumed(key, graph, counts, results, output_set)
        missing = [key for key in outputs if key not in results]
        if missing:
            raise SchedulerError(missing[0], KeyError("output not produced"))
        return {key: results[key] for key in outputs}


class ThreadedScheduler(Scheduler):
    """Thread-pool scheduler that runs independent tasks concurrently.

    This is the default execution backend, mirroring Dask's threaded
    scheduler: EDA computations are numpy-dominated so threads parallelize
    well despite the GIL.
    """

    name = "threaded"

    def __init__(self, max_workers: Optional[int] = None,
                 dispatch_latency: float = 0.0,
                 cache: Optional[TaskCache] = None):
        if max_workers is None:
            from repro.frame.io import default_worker_count
            max_workers = default_worker_count()
        self.max_workers = int(max_workers)
        self.dispatch_latency = float(dispatch_latency)
        self.cache = cache

    def execute(self, graph: TaskGraph, outputs: Sequence[str]) -> Dict[str, Any]:
        graph.validate()
        plan = self.plan_with_cache(graph, outputs)
        if plan is None:
            needed = set(graph.keys())
            results: Dict[str, Any] = {}
        else:
            needed = plan.needed
            results = dict(plan.results)
        dependents = graph.dependents()
        prefilled = set(results)
        remaining: Dict[str, int] = {
            key: len(set(graph.dependencies(key)) - prefilled)
            for key in needed}
        counts = self.consumer_counts(graph, needed)
        output_set = set(outputs)
        lock = threading.Lock()

        # Seed the ready stack in reverse topological order so pop() serves
        # sources in graph order.  `needed` is a set; seeding in its (hash)
        # order would complete e.g. CSV partition parses at random positions,
        # and every fan-in combine group would then wait on a straggler —
        # accumulating nearly all chunk results at once.  In graph order,
        # adjacent partitions finish together, each combine collapses as soon
        # as its group is done, and the release pass keeps the live set small.
        position = {key: index for index, key in enumerate(graph.toposort())}
        ready = sorted((key for key, count in remaining.items() if count == 0),
                       key=position.get, reverse=True)
        in_flight: Dict[Future, str] = {}

        def run_task(key: str) -> Any:
            if self.dispatch_latency:
                time.sleep(self.dispatch_latency)
            return graph[key].execute(results)

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            while ready or in_flight:
                # Submit at most max_workers tasks at a time, popping the most
                # recently enabled first (depth-first).  Submitting the whole
                # ready list would run every source task (e.g. CSV chunk
                # parse) before any consumer, accumulating the entire input in
                # memory; capping keeps newly enabled sketch tasks ahead of
                # still-queued parses, so chunks are consumed and released at
                # the rate they are produced.
                while ready and len(in_flight) < self.max_workers:
                    key = ready.pop()
                    in_flight[pool.submit(run_task, key)] = key
                done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                for future in done:
                    key = in_flight.pop(future)
                    error = future.exception()
                    if error is not None:
                        for pending in in_flight:
                            pending.cancel()
                        raise SchedulerError(key, error) from error
                    with lock:
                        results[key] = future.result()
                    self.store_result(plan, key, results[key])
                    for consumer in dependents.get(key, ()):
                        if consumer not in remaining:
                            continue
                        remaining[consumer] -= 1
                        if remaining[consumer] == 0:
                            ready.append(consumer)
                    # Every consumer of this task's dependencies that will
                    # ever run has been submitted or finished only when its
                    # own result is in; dropping fully consumed inputs here
                    # keeps peak memory at (workers x chunk), not the file.
                    with lock:
                        self.release_consumed(key, graph, counts, results,
                                              output_set)

        missing = [key for key in outputs if key not in results]
        if missing:
            raise SchedulerError(missing[0], KeyError("output not produced"))
        return {key: results[key] for key in outputs}


_SCHEDULERS = {
    SynchronousScheduler.name: SynchronousScheduler,
    ThreadedScheduler.name: ThreadedScheduler,
}


def get_scheduler(name: str = "threaded", **kwargs: Any) -> Scheduler:
    """Instantiate a scheduler by name (``"synchronous"`` or ``"threaded"``)."""
    try:
        factory = _SCHEDULERS[name]
    except KeyError:
        raise SchedulerError(name, KeyError(f"unknown scheduler {name!r}")) from None
    return factory(**kwargs)
