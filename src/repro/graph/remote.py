"""Real distributed execution: the socket-based remote scheduler backend.

This module retires the Figure 6(c) *simulation* in
:mod:`repro.graph.cluster`: instead of modelling an N-worker cluster with an
analytical formula, :class:`RemoteScheduler` actually runs the partitioned
EDA pipeline on N worker **processes** that speak a TCP protocol
(:mod:`repro.graph.wire`) — spawned locally as subprocesses, attached from
other hosts, or both.

Topology
--------
The coordinator (the process calling ``plot``/``create_report``) binds a
listening socket.  Workers connect *to* it, pass an HMAC
challenge-response handshake (``CHALLENGE``/``HELLO``/``WELCOME``, see
the trust model in :mod:`repro.graph.wire`), and then serve ``TASK``
frames until they receive ``SHUTDOWN`` or the connection drops.  Local
workers are spawned with ``python -m repro.graph.remote --connect
HOST:PORT`` and inherit the pool's secret via the
``REPRO_REMOTE_AUTHKEY`` environment variable; a worker on another
machine is attached by running the exact same command — with the same
key exported — against a coordinator bound to a routable address
(``compute.remote.bind`` + ``compute.remote.authkey``).  Authentication
proves the key, it does not encrypt: only bind routable addresses on
networks you trust.

What ships is exactly what the in-process pool ships: the
``can_run_in_worker`` contract of :mod:`repro.graph.executor` decides which
tasks are value-picklable, and shippable chunk parses travel as bundles
(parse + the sketches consuming it) so only small mergeable sketch states
come back over the wire.  Multi-file sources shard **per file**: a bundle
whose parse task names a path is pinned to the worker that served that path
before, so each worker re-reads (and keeps the disk-sidecar warm set of)
its own file subset.  Pinning only engages when the scan actually spans
multiple files (a single-file scan round-robins its chunks across every
worker) and spills to the least-loaded worker when the pinned owner's
queue backs up, so affinity never serializes a run.

Failure semantics
-----------------
* every frame is length-prefixed and checksummed; a malformed frame from a
  worker poisons only that connection, and a stray client that fails the
  challenge-response handshake is rejected before anything it sent is
  deserialized and without disturbing the run;
* the coordinator pings workers on a heartbeat and treats silence (or an
  *executing* task — the worker reports execution start with a
  ``STARTED`` frame — outliving ``compute.remote.timeout_s``) as a
  dead/wedged worker:
  the connection is closed, a spawned worker is respawned, and the
  worker's in-flight bundles are **re-dispatched** to a live worker.
  Bundles are pure functions of their arguments (the same idempotent
  task-key contract the cross-call cache relies on), so a re-run cannot
  change the result and a result arriving twice is absorbed at most once;
* a bundle that crashes ``MAX_ATTEMPTS`` workers in a row is reported as a
  :class:`~repro.errors.SchedulerError` naming the root task — never a
  hang;
* shutdown drains: in-flight results are collected (bounded wait), then
  workers receive ``SHUTDOWN`` and local processes are reaped.

Like the in-process pools, remote pools are **process-wide** — engines are
rebuilt per EDA call, and respawning (re-importing numpy in) the workers on
every interactive call would dominate the session.  Pools are keyed by
their full configuration and reaped atexit; :func:`shutdown_remote_pools`
tears them down explicitly (tests, benchmarks).
"""

from __future__ import annotations

import atexit
import itertools
import os
import queue
import secrets
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import GraphError
from repro.graph import wire
from repro.graph.cache import TaskCache
from repro.graph.executor import Executor, _portable_error, run_task_bundle
from repro.graph.scheduler import ProcessScheduler, WorkUnit, _ExecutionState
from repro.utils import classify_parse_key, default_worker_count

#: Default coordinator bind address; port 0 means "any free port".  Bind to
#: a routable address (e.g. ``"0.0.0.0:8786"``) to let workers on other
#: hosts attach.
DEFAULT_BIND = "127.0.0.1:0"

#: Seconds between coordinator PINGs (and the granularity of timeout checks).
DEFAULT_HEARTBEAT_S = 2.0

#: A task in flight longer than this marks its worker as wedged and is
#: re-dispatched.  Per *task* (one chunk bundle), not per run.
DEFAULT_TIMEOUT_S = 30.0

#: How long the first submit may wait for at least one worker to connect.
CONNECT_TIMEOUT_S = 60.0

#: A bundle that took this many workers down is reported as failed.
MAX_ATTEMPTS = 3

#: Bounded wait for in-flight results during a graceful shutdown.
DRAIN_TIMEOUT_S = 10.0

#: Environment variable carrying the shared handshake secret.  Spawned
#: workers inherit the pool's key through it automatically; workers
#: attached from other hosts must export the coordinator's configured
#: ``compute.remote.authkey`` under this name.
AUTHKEY_ENV = "REPRO_REMOTE_AUTHKEY"

#: A pinned (file-affinity) bundle whose owner already has this many
#: bundles in flight spills to the least-loaded worker instead of queuing
#: behind its warm-cache owner.
AFFINITY_SPILL_INFLIGHT = 4


class RemoteExecutionError(GraphError):
    """The remote pool could not complete a dispatched bundle."""


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
def worker_main(host: str, port: int, worker_id: Optional[str] = None,
                authkey: Optional[str] = None) -> None:
    """Run one worker: connect to the coordinator and serve task frames.

    The handshake is mutual: the worker answers the coordinator's
    ``CHALLENGE`` inside its ``HELLO`` and refuses to serve a coordinator
    whose ``WELCOME`` cannot answer the worker's counter-nonce — task
    frames carry pickled callables, so an unauthenticated "coordinator"
    would mean arbitrary code execution on the worker.

    The receive loop runs on a background thread so PINGs are answered even
    while a task computes; the main thread executes tasks strictly in
    arrival order, reporting each execution start with a ``STARTED`` frame
    (which is what scopes the coordinator's per-task timeout to the task
    actually running, not to queue wait).  Any wire-level failure
    (coordinator gone, corrupted stream) ends the worker — the coordinator
    re-dispatches whatever this worker still owed.
    """
    if authkey is None:
        authkey = os.environ.get(AUTHKEY_ENV)
    if not authkey:
        raise SystemExit(
            f"remote worker: no shared secret; set the {AUTHKEY_ENV} "
            f"environment variable to the coordinator's "
            f"compute.remote.authkey")
    try:
        sock = socket.create_connection((host, port), timeout=30.0)
    except OSError as error:
        # The coordinator may already be gone (short run, slow spawn);
        # exit quietly instead of leaving a traceback on the user's tty.
        raise SystemExit(
            f"remote worker: cannot reach coordinator at "
            f"{host}:{port}: {error}") from None
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_lock = threading.Lock()
    name = worker_id or f"worker-{os.getpid()}"
    try:
        sock.settimeout(30.0)
        msg_type, nonce = wire.recv_frame(sock)
        if msg_type != wire.MSG_CHALLENGE:
            raise wire.WireError("coordinator did not open with CHALLENGE")
        counter_nonce = secrets.token_bytes(wire.NONCE_BYTES)
        with send_lock:
            wire.send_frame(sock, wire.MSG_HELLO, wire.dump_json(
                {"id": name, "pid": os.getpid(),
                 "host": socket.gethostname(),
                 "digest": wire.compute_digest(authkey, nonce),
                 "nonce": counter_nonce.hex()}))
        msg_type, payload = wire.recv_frame(sock)
        welcome = wire.load_json(payload) if msg_type == wire.MSG_WELCOME \
            else None
        if not isinstance(welcome, dict) or not wire.verify_digest(
                authkey, counter_nonce, welcome.get("digest")):
            raise wire.WireError("coordinator failed authentication")
    except (wire.WireError, OSError) as error:
        try:
            sock.close()
        except OSError:
            pass
        raise SystemExit(
            f"remote worker: handshake with {host}:{port} failed: "
            f"{error}") from None
    sock.settimeout(None)
    tasks: "queue.SimpleQueue[Optional[bytes]]" = queue.SimpleQueue()

    def receive() -> None:
        while True:
            try:
                msg_type, payload = wire.recv_frame(sock)
            except (wire.WireError, OSError):
                tasks.put(None)
                return
            if msg_type == wire.MSG_PING:
                try:
                    with send_lock:
                        wire.send_frame(sock, wire.MSG_PONG)
                except OSError:
                    tasks.put(None)
                    return
            elif msg_type == wire.MSG_TASK:
                tasks.put(payload)
            elif msg_type == wire.MSG_SHUTDOWN:
                tasks.put(None)
                return
            # HELLO/RESULT from the coordinator are protocol violations;
            # ignoring them beats dying over a confused peer.

    receiver = threading.Thread(target=receive, daemon=True,
                                name=f"repro-remote-recv-{name}")
    receiver.start()
    try:
        while True:
            payload = tasks.get()
            if payload is None:
                return
            try:
                task_id, func, args = wire.load_payload(payload)
            except wire.WireError:
                return                      # stream no longer trustworthy
            try:
                with send_lock:
                    wire.send_frame(sock, wire.MSG_STARTED,
                                    wire.dump_json({"task": task_id}))
            except OSError:
                return
            try:
                value = func(*args)
                blob = wire.dump_payload((task_id, True, value))
            except BaseException as error:  # noqa: BLE001 - reported upstream
                blob = wire.dump_payload((task_id, False,
                                          _portable_error(error)))
            try:
                with send_lock:
                    wire.send_frame(sock, wire.MSG_RESULT, blob)
            except OSError:
                return
    finally:
        try:
            sock.close()
        except OSError:
            pass


def main(argv: Optional[List[str]] = None) -> None:
    """CLI entry point: ``python -m repro.graph.remote --connect HOST:PORT``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.graph.remote",
        description="Start one repro remote-execution worker and attach it "
                    "to a coordinator.  The shared handshake secret is read "
                    f"from the {AUTHKEY_ENV} environment variable (export "
                    "the coordinator's compute.remote.authkey; never passed "
                    "on the command line, where it would leak via ps).")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="address the coordinator is listening on")
    parser.add_argument("--id", default=None,
                        help="worker name reported to the coordinator")
    args = parser.parse_args(argv)
    host, port = wire.parse_address(args.connect)
    worker_main(host, port, worker_id=args.id)


# --------------------------------------------------------------------------- #
# Coordinator side
# --------------------------------------------------------------------------- #
@dataclass
class PoolStats:
    """Cumulative wire/work accounting of one remote pool."""

    shipped_bytes: int = 0
    bytes_received: int = 0
    redispatched: int = 0
    rejected_connections: int = 0
    worker_busy_s: Dict[str, float] = field(default_factory=dict)
    worker_tasks: Dict[str, int] = field(default_factory=dict)

    def copy(self) -> "PoolStats":
        return PoolStats(self.shipped_bytes, self.bytes_received,
                         self.redispatched, self.rejected_connections,
                         dict(self.worker_busy_s), dict(self.worker_tasks))


class _PendingTask:
    """One submitted callable, tracked until its future resolves."""

    __slots__ = ("task_id", "func", "args", "future", "affinity",
                 "dispatched_at", "started_at", "attempts", "worker")

    def __init__(self, task_id: int, func: Callable[..., Any],
                 args: Tuple[Any, ...], affinity: Optional[str]):
        self.task_id = task_id
        self.func = func
        self.args = args
        self.future: Future = Future()
        self.affinity = affinity
        self.dispatched_at = 0.0
        self.started_at = 0.0       # set by the worker's STARTED frame
        self.attempts = 0
        self.worker: Optional[str] = None


class _WorkerLink:
    """Coordinator-side state of one connected worker."""

    __slots__ = ("id", "sock", "send_lock", "process", "alive", "last_seen",
                 "last_ping", "inflight")

    def __init__(self, worker_id: str, sock: socket.socket,
                 process: Optional[subprocess.Popen]):
        self.id = worker_id
        self.sock = sock
        self.send_lock = threading.Lock()
        self.process = process
        self.alive = True
        self.last_seen = time.monotonic()
        self.last_ping = 0.0
        self.inflight: Dict[int, _PendingTask] = {}


def _resolve_future(future: Future, ok: bool, value: Any) -> None:
    """Complete a future exactly once, tolerating cancellation races."""
    try:
        if future.done():
            return
        if ok:
            future.set_result(value)
        elif isinstance(value, BaseException):
            future.set_exception(value)
        else:
            future.set_exception(RemoteExecutionError(str(value)))
    except Exception:       # cancelled between the check and the set
        pass


class _RemotePool:
    """A live set of socket workers plus the dispatch/monitor machinery."""

    def __init__(self, spawn_workers: int, bind: str = DEFAULT_BIND,
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S,
                 timeout_s: float = DEFAULT_TIMEOUT_S,
                 authkey: Optional[str] = None):
        self.spawn_workers = int(spawn_workers)
        self.heartbeat_s = float(heartbeat_s)
        self.timeout_s = float(timeout_s)
        # Without a configured key the pool mints a random one: spawned
        # workers inherit it via the environment, and nothing else can
        # pass the handshake — locked-down by default.  Attach mode needs
        # an explicit shared key on both sides (compute.remote.authkey on
        # the coordinator, REPRO_REMOTE_AUTHKEY on the workers).
        self.authkey = authkey or secrets.token_hex(32)
        self.stats = PoolStats()
        self._lock = threading.Lock()
        self._workers_changed = threading.Condition(self._lock)
        self._workers: Dict[str, _WorkerLink] = {}
        self._unassigned: deque = deque()
        self._pending: Dict[int, _PendingTask] = {}
        self._affinity: Dict[str, str] = {}      # affinity key -> worker id
        self._task_ids = itertools.count(1)
        self._name_seq = itertools.count(1)
        self._spawn_seq = itertools.count(1)
        self._procs: Dict[int, subprocess.Popen] = {}    # child pid -> handle
        self._closed = False
        self._started_at = time.monotonic()
        self._respawn_budget = 2 * self.spawn_workers + 2

        host, port = wire.parse_address(bind)
        self._listener = socket.create_server((host, port), backlog=16)
        self._listener.settimeout(0.5)
        bound_host, bound_port = self._listener.getsockname()[:2]
        #: The address workers connect to (``host:port``; spawn-time truth).
        self.address = f"{host or bound_host}:{bound_port}"
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="repro-remote-accept")
        self._accept_thread.start()
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, daemon=True, name="repro-remote-monitor")
        self._monitor_thread.start()
        for _ in range(self.spawn_workers):
            self._spawn_local_worker()

    # -- worker lifecycle ------------------------------------------------ #
    def _spawn_local_worker(self) -> None:
        """Start one local worker subprocess pointed at this pool."""
        # Task functions pickle by reference, so the child must be able to
        # import every module the coordinator can — including modules made
        # importable by sys.path manipulation (pytest rootdirs, scripts).
        # Propagate the full resolved sys.path, the way multiprocessing's
        # spawn context does, with this package's root in front.
        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        entries = [src_root] + [entry for entry in sys.path
                                if entry and entry != src_root]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(entries)
        env[AUTHKEY_ENV] = self.authkey
        name = f"local-{os.getpid()}-{next(self._spawn_seq)}"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.graph.remote",
             "--connect", self.address, "--id", name],
            env=env, stdout=subprocess.DEVNULL)
        # Re-associated with its link at HELLO time via the pid the worker
        # reports; kept here so shutdown can reap children that never
        # finished connecting.
        self._procs[process.pid] = process

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self._handshake(conn)

    def _handshake(self, conn: socket.socket) -> None:
        """Admit a worker (authenticated HELLO) or reject the connection.

        Nothing a client sends is unpickled before it proves the shared
        key: the HELLO answer to our CHALLENGE nonce is JSON, and a
        missing or wrong HMAC digest rejects the connection outright.
        The WELCOME reply answers the worker's counter-nonce so the
        worker, in turn, never accepts task frames (pickled callables!)
        from a coordinator that does not hold the key.
        """
        try:
            conn.settimeout(5.0)
            nonce = secrets.token_bytes(wire.NONCE_BYTES)
            wire.send_frame(conn, wire.MSG_CHALLENGE, nonce)
            msg_type, payload = wire.recv_frame(conn)
            if msg_type != wire.MSG_HELLO:
                raise wire.WireError("first frame must be HELLO")
            hello = wire.load_json(payload)
            if not isinstance(hello, dict) or not wire.verify_digest(
                    self.authkey, nonce, hello.get("digest")):
                raise wire.WireError("authentication failed")
            declared = str(hello["id"])
            counter_nonce = bytes.fromhex(str(hello["nonce"]))
            wire.send_frame(conn, wire.MSG_WELCOME, wire.dump_json(
                {"digest": wire.compute_digest(self.authkey, counter_nonce)}))
        except (wire.WireError, OSError, KeyError, TypeError, ValueError):
            with self._lock:
                self.stats.rejected_connections += 1
            try:
                conn.close()
            except OSError:
                pass
            return
        conn.settimeout(None)
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._lock:
            if self._closed:
                conn.close()
                return
            worker_id = declared
            if worker_id in self._workers:
                worker_id = f"{declared}#{next(self._name_seq)}"
            link = _WorkerLink(worker_id, conn,
                               process=self._procs.get(hello.get("pid")))
            self._workers[worker_id] = link
            self.stats.worker_busy_s.setdefault(worker_id, 0.0)
            self.stats.worker_tasks.setdefault(worker_id, 0)
            self._pump_locked()
            self._workers_changed.notify_all()
        threading.Thread(target=self._serve_worker, args=(link,), daemon=True,
                         name=f"repro-remote-serve-{worker_id}").start()

    def _serve_worker(self, link: _WorkerLink) -> None:
        """Receive loop of one worker connection."""
        while True:
            try:
                msg_type, payload = wire.recv_frame(link.sock)
            except (wire.WireError, OSError) as error:
                with self._lock:
                    self._lose_worker_locked(link, str(error))
                return
            if msg_type == wire.MSG_RESULT:
                try:
                    task_id, ok, value = wire.load_payload(payload)
                except wire.WireError as error:
                    with self._lock:
                        self._lose_worker_locked(link, str(error))
                    return
                now = time.monotonic()
                with self._lock:
                    if not link.alive:
                        return
                    link.last_seen = now
                    self.stats.bytes_received += len(payload) + 13
                    task = link.inflight.pop(task_id, None)
                    if task is not None:
                        self._pending.pop(task_id, None)
                        self.stats.worker_busy_s[link.id] = \
                            self.stats.worker_busy_s.get(link.id, 0.0) + \
                            (now - (task.started_at or task.dispatched_at))
                        self.stats.worker_tasks[link.id] = \
                            self.stats.worker_tasks.get(link.id, 0) + 1
                        self._pump_locked()
                # Resolve outside the lock; a done/duplicate future is a
                # no-op, which is the at-most-once absorption guarantee.
                if task is not None:
                    _resolve_future(task.future, ok, value)
            elif msg_type == wire.MSG_STARTED:
                try:
                    started = wire.load_json(payload)
                    task_id = started["task"]
                except (wire.WireError, KeyError, TypeError) as error:
                    with self._lock:
                        self._lose_worker_locked(link, str(error))
                    return
                with self._lock:
                    link.last_seen = time.monotonic()
                    # Absent after a timeout re-dispatch moved the task
                    # elsewhere; a stale start notice is not an error.
                    task = link.inflight.get(task_id)
                    if task is not None:
                        task.started_at = link.last_seen
            elif msg_type == wire.MSG_PONG:
                with self._lock:
                    link.last_seen = time.monotonic()
            else:
                with self._lock:
                    self._lose_worker_locked(
                        link, f"unexpected message type {msg_type}")
                return

    def _lose_worker_locked(self, link: _WorkerLink, reason: str) -> None:
        """Mark a worker dead, re-dispatch its bundles, respawn if local."""
        if not link.alive:
            return
        link.alive = False
        self._workers.pop(link.id, None)
        for key in [key for key, owner in self._affinity.items()
                    if owner == link.id]:
            del self._affinity[key]
        try:
            link.sock.close()
        except OSError:
            pass
        if link.process is not None:
            try:
                link.process.terminate()
            except OSError:
                pass
        orphaned = list(link.inflight.values())
        link.inflight.clear()
        failed: List[_PendingTask] = []
        for task in orphaned:
            if task.attempts >= MAX_ATTEMPTS:
                self._pending.pop(task.task_id, None)
                failed.append(task)
            else:
                self.stats.redispatched += 1
                self._unassigned.appendleft(task)
        if not self._closed and self._is_local_name(link.id) and \
                self._respawn_budget > 0:
            self._respawn_budget -= 1
            self._spawn_local_worker()
        self._pump_locked()
        self._workers_changed.notify_all()
        for task in failed:
            _resolve_future(task.future, False, RemoteExecutionError(
                f"bundle failed on {task.attempts} workers "
                f"(last worker {link.id!r} lost: {reason})"))

    @staticmethod
    def _is_local_name(worker_id: str) -> bool:
        return worker_id.startswith(f"local-{os.getpid()}-")

    # -- dispatch --------------------------------------------------------- #
    def submit(self, func: Callable[..., Any], *args: Any,
               affinity: Optional[str] = None) -> Future:
        """Enqueue ``func(*args)`` for a worker; returns its future."""
        with self._lock:
            if self._closed:
                raise RemoteExecutionError("remote pool is shut down")
            task = _PendingTask(next(self._task_ids), func, tuple(args),
                                affinity)
            self._pending[task.task_id] = task
            self._unassigned.append(task)
            self._pump_locked()
        return task.future

    def _pick_worker_locked(self, affinity: Optional[str]
                            ) -> Optional[_WorkerLink]:
        if not self._workers:
            return None
        least = min(self._workers.values(), key=lambda w: len(w.inflight))
        if affinity is not None:
            owner = self._affinity.get(affinity)
            if owner is not None and owner in self._workers:
                link = self._workers[owner]
                # Honor the pin while the owner keeps up; once its queue
                # backs up, spill to the least-loaded worker (without
                # re-pinning — later bundles of the file return to the
                # owner's warm caches when it drains).
                if len(link.inflight) < AFFINITY_SPILL_INFLIGHT or \
                        len(least.inflight) >= len(link.inflight):
                    return link
                return least
            self._affinity[affinity] = least.id
        return least

    def _pump_locked(self) -> None:
        """Assign queued tasks to live workers (affinity, then least-loaded)."""
        while self._unassigned:
            link = self._pick_worker_locked(self._unassigned[0].affinity)
            if link is None:
                return
            task = self._unassigned.popleft()
            self._dispatch_locked(link, task)

    def _dispatch_locked(self, link: _WorkerLink, task: _PendingTask) -> None:
        task.attempts += 1
        task.worker = link.id
        task.dispatched_at = time.monotonic()
        task.started_at = 0.0       # not executing until STARTED arrives
        link.inflight[task.task_id] = task
        try:
            blob = wire.dump_payload((task.task_id, task.func, task.args))
            with link.send_lock:
                sent = wire.send_frame(link.sock, wire.MSG_TASK, blob)
            self.stats.shipped_bytes += sent
        except (wire.WireError, OSError, Exception) as error:  # noqa: BLE001
            # Unpicklable payloads raise here too; losing the worker would
            # be wrong for those, so fail the task when pickling broke and
            # lose the worker only on transport errors.
            link.inflight.pop(task.task_id, None)
            if isinstance(error, OSError):
                self._unassigned.appendleft(task)
                self.stats.redispatched += 1
                task.attempts -= 1
                self._lose_worker_locked(link, f"send failed: {error}")
            else:
                self._pending.pop(task.task_id, None)
                _resolve_future(task.future, False, RemoteExecutionError(
                    f"bundle could not be serialized: {error}"))

    # -- liveness --------------------------------------------------------- #
    def _monitor_loop(self) -> None:
        # The short sleep keeps timeout detection timely; PINGs themselves
        # go out at the configured heartbeat cadence (last_ping below).
        while not self._closed:
            time.sleep(min(self.heartbeat_s, 0.5))
            now = time.monotonic()
            dead_after = max(3.0 * self.heartbeat_s, 5.0)
            with self._lock:
                if self._closed:
                    return
                for link in list(self._workers.values()):
                    # Only a task the worker reported as *executing* can
                    # trip the timeout — workers run their queue serially,
                    # so a bundle waiting behind a slow-but-healthy one
                    # accrues queue time, not execution time.
                    overdue = [task for task in link.inflight.values()
                               if task.started_at
                               and now - task.started_at > self.timeout_s]
                    if overdue:
                        self._lose_worker_locked(
                            link, f"task exceeded the {self.timeout_s:.1f}s "
                                  f"timeout")
                        continue
                    if now - link.last_seen > dead_after:
                        self._lose_worker_locked(link, "heartbeat timeout")
                        continue
                    if now - link.last_ping < self.heartbeat_s:
                        continue
                    link.last_ping = now
                    try:
                        with link.send_lock:
                            wire.send_frame(link.sock, wire.MSG_PING)
                    except OSError as error:
                        self._lose_worker_locked(link, f"ping failed: {error}")
                if not self._workers and self._pending and \
                        self._respawn_budget <= 0:
                    self._fail_all_locked("every remote worker was lost and "
                                          "the respawn budget is exhausted")
                elif not self._workers and self._unassigned and \
                        now - self._started_at > CONNECT_TIMEOUT_S:
                    self._fail_all_locked(
                        f"no remote worker connected within "
                        f"{CONNECT_TIMEOUT_S:.0f}s of pool startup")

    def _fail_all_locked(self, reason: str) -> None:
        tasks = list(self._pending.values())
        self._pending.clear()
        self._unassigned.clear()
        for task in tasks:
            _resolve_future(task.future, False, RemoteExecutionError(reason))

    # -- introspection ---------------------------------------------------- #
    def wait_for_workers(self, count: int, timeout: float = CONNECT_TIMEOUT_S
                         ) -> int:
        """Block until *count* workers are connected (or timeout); returns
        the connected count."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while len(self._workers) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._workers_changed.wait(remaining)
            return len(self._workers)

    def worker_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._workers)

    def worker_count(self) -> int:
        """How many workers are connected right now (spawned + attached)."""
        with self._lock:
            return len(self._workers)

    def stats_snapshot(self) -> PoolStats:
        with self._lock:
            return self.stats.copy()

    # -- shutdown --------------------------------------------------------- #
    def shutdown(self, drain_timeout_s: float = DRAIN_TIMEOUT_S) -> None:
        """Drain in-flight work (bounded), stop workers, close sockets."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        deadline = time.monotonic() + drain_timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                if not self._pending:
                    break
            time.sleep(0.02)
        with self._lock:
            links = list(self._workers.values())
            self._workers.clear()
            self._fail_all_locked("remote pool shut down")
            self._workers_changed.notify_all()
        for link in links:
            link.alive = False
            try:
                with link.send_lock:
                    wire.send_frame(link.sock, wire.MSG_SHUTDOWN)
            except OSError:
                pass
            try:
                link.sock.close()
            except OSError:
                pass
        try:
            self._listener.close()
        except OSError:
            pass
        # Reap every spawned child, including any that never finished
        # connecting (their connect fails once the listener is gone).
        for process in self._procs.values():
            try:
                process.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                process.terminate()
                try:
                    process.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
        self._procs.clear()


# --------------------------------------------------------------------------- #
# Process-wide pool sharing (mirrors ProcessExecutor's shared pools)
# --------------------------------------------------------------------------- #
_SHARED_POOLS: Dict[Tuple, _RemotePool] = {}
_SHARED_LOCK = threading.Lock()


def _pool_key(workers: int, bind: str, heartbeat_s: float,
              timeout_s: float, authkey: Optional[str]) -> Tuple:
    return (int(workers), str(bind), float(heartbeat_s), float(timeout_s),
            authkey)


def shutdown_remote_pools() -> None:
    """Tear down every shared remote pool (tests, benchmarks, atexit)."""
    with _SHARED_LOCK:
        pools = list(_SHARED_POOLS.values())
        _SHARED_POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_remote_pools)


class RemoteExecutor(Executor):
    """Executor running payloads on a shared pool of socket workers.

    ``workers`` local subprocesses are spawned on first use (0 with an
    externally-bound address means "attached workers only").  Pools are
    process-wide, keyed by their full configuration: engines are rebuilt
    per EDA call and workers must not be respawned each time.  ``close``
    is therefore a no-op and ``discard`` (after a pool-level failure)
    drops the shared pool so the next submit starts fresh.
    """

    name = "remote"

    def __init__(self, max_workers: Optional[int] = None,
                 workers: Optional[int] = None, bind: str = DEFAULT_BIND,
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S,
                 timeout_s: float = DEFAULT_TIMEOUT_S,
                 authkey: Optional[str] = None):
        super().__init__(max_workers)
        self.workers = self.max_workers if workers is None else int(workers)
        self.bind = str(bind)
        self.heartbeat_s = float(heartbeat_s)
        self.timeout_s = float(timeout_s)
        self.authkey = authkey
        self._key = _pool_key(self.workers, self.bind, self.heartbeat_s,
                              self.timeout_s, self.authkey)

    def pool(self, create: bool = True) -> Optional[_RemotePool]:
        """The shared pool backing this executor (started on demand)."""
        with _SHARED_LOCK:
            pool = _SHARED_POOLS.get(self._key)
            if pool is None and create:
                pool = _RemotePool(self.workers, bind=self.bind,
                                   heartbeat_s=self.heartbeat_s,
                                   timeout_s=self.timeout_s,
                                   authkey=self.authkey)
                _SHARED_POOLS[self._key] = pool
            return pool

    def submit(self, fn: Callable[..., Any], *args: Any,
               affinity: Optional[str] = None) -> Future:
        return self.pool().submit(fn, *args, affinity=affinity)

    def stats_snapshot(self) -> PoolStats:
        pool = self.pool(create=False)
        return pool.stats_snapshot() if pool is not None else PoolStats()

    def discard(self) -> None:
        with _SHARED_LOCK:
            pool = _SHARED_POOLS.pop(self._key, None)
        if pool is not None:
            pool.shutdown()

    def close(self) -> None:
        """No-op: the pool is shared process-wide (see the class docstring)."""


def _bundle_affinity(task: Any) -> Optional[str]:
    """Per-file sharding key of a bundle: the path its parse task reads.

    Multi-file sources emit one parse task per (file, byte range); pinning
    every bundle of a file to one worker keeps that worker's OS page cache
    and parsed-chunk disk sidecar warm for exactly its file subset.

    Only genuine partition-parse tasks qualify (their key prefix is a
    :data:`~repro.utils.PARSE_TASK_PREFIXES` variant and the path is
    always their first positional argument) — matching any slash-bearing
    string would mis-pin bundles on arguments like date-format strings.
    In-memory partition slices carry a frame, not a path, and return None.
    """
    if classify_parse_key(task.key) is None:
        return None
    if task.args and isinstance(task.args[0], str):
        return task.args[0]
    return None


class RemoteScheduler(ProcessScheduler):
    """Scheduler dispatching bundles to socket workers (the Fig 6(c) backend).

    Planning is inherited unchanged from :class:`ProcessScheduler` — the
    same hybrid dispatch and ``can_run_in_worker`` contract — so results
    are bit-identical across the synchronous/threaded/process/remote
    backends; only *where* shippable bundles run differs.  On top of the
    shared RunStats this backend reports ``shipped_bytes`` /
    ``bytes_received`` (wire traffic), ``redispatched`` (bundles re-run
    after a worker loss) and per-worker utilization.
    """

    name = "remote"

    def __init__(self, max_workers: Optional[int] = None,
                 cache: Optional[TaskCache] = None,
                 workers: Optional[int] = None, bind: str = DEFAULT_BIND,
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S,
                 timeout_s: float = DEFAULT_TIMEOUT_S,
                 authkey: Optional[str] = None):
        if workers is None:
            workers = max_workers if max_workers is not None \
                else default_worker_count()
        super().__init__(max_workers=int(workers), cache=cache)
        self.bind = str(bind)
        self.heartbeat_s = float(heartbeat_s)
        self.timeout_s = float(timeout_s)
        self.authkey = authkey
        self._affinity_active = False

    def _make_executor(self) -> Executor:
        return RemoteExecutor(max_workers=self.max_workers,
                              workers=self.max_workers, bind=self.bind,
                              heartbeat_s=self.heartbeat_s,
                              timeout_s=self.timeout_s,
                              authkey=self.authkey)

    def _inflight_cap(self) -> int:
        # Keep every worker fed while results are in transit: one bundle
        # computing plus one queued per worker, instead of the in-process
        # pools' one-in-flight-per-worker window.  The count is the live
        # connected-worker population, not the spawn request — in
        # attach-only mode (workers=0) the spawn count is zero while real
        # workers keep joining from other hosts, and the driver loop
        # re-reads the cap every iteration so it widens as they do.
        live = 0
        executor = self._executor
        if isinstance(executor, RemoteExecutor):
            pool = executor.pool(create=False)
            if pool is not None:
                live = pool.worker_count()
        return max(2, 2 * max(self.max_workers, live))

    def _submit_unit(self, unit: WorkUnit, state: _ExecutionState) -> Future:
        graph = state.graph
        if self.last_run is not None:
            self.last_run.shipped += 1 + len(unit.members)
        root = graph[unit.root]
        executor = self.executor()
        assert isinstance(executor, RemoteExecutor)
        affinity = _bundle_affinity(root) if self._affinity_active else None
        return executor.submit(
            run_task_bundle, root, [graph[key] for key in unit.members],
            unit.return_root, affinity=affinity)

    def execute(self, graph: Any, outputs: Any) -> Dict[str, Any]:
        executor = self.executor()
        assert isinstance(executor, RemoteExecutor)
        # Per-file pinning only pays when there are files to shard: a
        # single-file scan (or an in-memory source) must round-robin its
        # bundles across the whole pool, not serialize on one worker.
        paths = {path for path in map(_bundle_affinity, graph.tasks())
                 if path is not None}
        self._affinity_active = len(paths) > 1
        before = executor.stats_snapshot()
        started = time.monotonic()
        results = super().execute(graph, outputs)
        elapsed = max(time.monotonic() - started, 1e-9)
        after = executor.stats_snapshot()
        run = self.last_run
        if run is not None:
            run.shipped_bytes += after.shipped_bytes - before.shipped_bytes
            run.bytes_received += after.bytes_received - before.bytes_received
            run.redispatched += after.redispatched - before.redispatched
            run.worker_utilization = {
                worker_id: min(1.0, (busy - before.worker_busy_s.get(
                    worker_id, 0.0)) / elapsed)
                for worker_id, busy in after.worker_busy_s.items()}
        return results


__all__ = [
    "AFFINITY_SPILL_INFLIGHT",
    "AUTHKEY_ENV",
    "CONNECT_TIMEOUT_S",
    "DEFAULT_BIND",
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_TIMEOUT_S",
    "MAX_ATTEMPTS",
    "PoolStats",
    "RemoteExecutionError",
    "RemoteExecutor",
    "RemoteScheduler",
    "main",
    "shutdown_remote_pools",
    "worker_main",
]


if __name__ == "__main__":      # pragma: no cover - exercised via subprocess
    main()
