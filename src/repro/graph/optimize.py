"""Graph optimization passes.

The passes mirror what the paper relies on from Dask:

* **cull** — drop tasks that are not ancestors of a requested output.
* **common sub-expression elimination (CSE)** — merge tasks with identical
  structural fingerprints so a shared computation (e.g. the quantiles needed
  by the stats table, the box plot and the Q-Q plot of one column) runs once.
* **linear-chain fusion** — collapse ``a -> b`` chains where ``b`` is the only
  consumer of ``a`` to cut scheduling overhead on tiny tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.graph.graph import TaskGraph
from repro.graph.task import Task, TaskRef


@dataclass
class OptimizeStats:
    """Bookkeeping about what an optimization pass removed."""

    input_tasks: int
    output_tasks: int
    merged_by_cse: int = 0
    culled: int = 0
    fused: int = 0

    @property
    def removed(self) -> int:
        """Total number of tasks removed by the pass(es)."""
        return self.input_tasks - self.output_tasks


def cull(graph: TaskGraph, outputs: Sequence[str]) -> Tuple[TaskGraph, OptimizeStats]:
    """Keep only the tasks needed to produce *outputs*."""
    needed = graph.ancestors(list(outputs))
    kept = [task for task in graph.tasks() if task.key in needed]
    culled_graph = TaskGraph(kept)
    stats = OptimizeStats(input_tasks=len(graph), output_tasks=len(culled_graph),
                          culled=len(graph) - len(culled_graph))
    return culled_graph, stats


def common_subexpression_elimination(
        graph: TaskGraph,
        outputs: Sequence[str]) -> Tuple[TaskGraph, Dict[str, str], OptimizeStats]:
    """Merge tasks with identical fingerprints.

    Returns the rewritten graph, a mapping from original output keys to their
    canonical (possibly merged) keys, and pass statistics.  Fingerprints are
    recomputed bottom-up so that chains of identical computations collapse
    transitively.
    """
    order = graph.toposort()
    canonical_by_token: Dict[str, str] = {}
    remap: Dict[str, str] = {}
    new_tasks: List[Task] = []

    from repro.graph.task import tokenize

    for key in order:
        original = graph[key]
        task = original.substitute(remap)
        # Tokens are recomputed after dependency rewriting so that two tasks
        # become mergeable once their inputs have been merged.  Tasks with a
        # customized token (impure calls, fused tasks) keep it, so they are
        # only merged with tasks carrying the exact same custom token.
        if not original.token_customized:
            token = tokenize(task.func, task.args, task.kwargs)
        else:
            token = original.token
        rewritten = Task(task.key, task.func, task.args, task.kwargs, token=token,
                         token_customized=original.token_customized)
        canonical = canonical_by_token.get(rewritten.token)
        if canonical is None:
            canonical_by_token[rewritten.token] = key
            remap[key] = key
            new_tasks.append(rewritten)
        else:
            remap[key] = canonical

    merged_graph = TaskGraph(new_tasks)
    output_map = {key: remap.get(key, key) for key in outputs}
    stats = OptimizeStats(input_tasks=len(graph), output_tasks=len(merged_graph),
                          merged_by_cse=len(graph) - len(merged_graph))
    return merged_graph, output_map, stats


def fuse_linear_chains(graph: TaskGraph,
                       outputs: Sequence[str]) -> Tuple[TaskGraph, OptimizeStats]:
    """Fuse ``producer -> consumer`` chains with a single consumer.

    The producer's computation is in-lined into the consumer via a composed
    callable, reducing the number of scheduled tasks without changing results.
    Output tasks are never fused away.
    """
    protected = set(outputs)
    dependents = graph.dependents()
    fused_away: Dict[str, Task] = {}

    # Identify producers eligible for fusion: exactly one consumer, not a
    # requested output.
    for key, consumers in dependents.items():
        if key in protected or len(consumers) != 1:
            continue
        fused_away[key] = graph[key]

    new_tasks: List[Task] = []
    for key in graph.toposort():
        if key in fused_away:
            continue
        task = graph[key]
        task = _inline_dependencies(task, fused_away)
        new_tasks.append(task)

    fused_graph = TaskGraph(new_tasks)
    stats = OptimizeStats(input_tasks=len(graph), output_tasks=len(fused_graph),
                          fused=len(graph) - len(fused_graph))
    return fused_graph, stats


def _inline_dependencies(task: Task, fused_away: Dict[str, Task]) -> Task:
    """Replace references to fused-away producers with inline sub-calls.

    The returned task keeps the consumer's key; its arguments are TaskRefs to
    the remaining (non-fused) dependencies, so the scheduler still sees the
    correct edges.
    """
    direct_fused = [ref for ref in dict.fromkeys(task.dependencies())
                    if ref in fused_away]
    if not direct_fused:
        return task

    inline_tasks = {key: _inline_dependencies(fused_away[key], fused_away)
                    for key in direct_fused}
    outer: List[str] = []
    for sub_task in list(inline_tasks.values()) + [task]:
        for dependency in sub_task.dependencies():
            if dependency not in inline_tasks and dependency not in outer:
                outer.append(dependency)

    def fused(*outer_values, __task=task, __inline=inline_tasks, __outer=tuple(outer)):
        local: Dict[str, object] = dict(zip(__outer, outer_values))
        for inline_key, inline_task in __inline.items():
            local[inline_key] = inline_task.execute(local)
        return __task.execute(local)

    fused.__name__ = f"fused_{getattr(task.func, '__name__', 'task')}"
    args = tuple(TaskRef(key) for key in outer)
    return Task(task.key, fused, args, {},
                token=f"fused:{task.token}:{sorted(inline_tasks)!r}",
                token_customized=True)


def optimize(graph: TaskGraph, outputs: Sequence[str],
             enable_cse: bool = True,
             enable_fusion: bool = False) -> Tuple[TaskGraph, Dict[str, str], OptimizeStats]:
    """Run the standard optimization pipeline: cull, then CSE, then fusion.

    Returns ``(graph, output key remap, stats)``.  Fusion is off by default
    because the threaded scheduler's per-task overhead is already small; it is
    exposed for the ablation benchmark.
    """
    culled_graph, cull_stats = cull(graph, outputs)
    output_map = {key: key for key in outputs}
    total = OptimizeStats(input_tasks=len(graph), output_tasks=len(culled_graph),
                          culled=cull_stats.culled)

    working = culled_graph
    if enable_cse:
        working, output_map, cse_stats = common_subexpression_elimination(
            working, outputs)
        total.merged_by_cse = cse_stats.merged_by_cse
        total.output_tasks = len(working)
    if enable_fusion:
        working, fuse_stats = fuse_linear_chains(working, list(output_map.values()))
        total.fused = fuse_stats.fused
        total.output_tasks = len(working)
    return working, output_map, total
