"""Pluggable executors: where scheduler work units actually run.

The schedulers in :mod:`repro.graph.scheduler` decide *what* to run and in
which order; an :class:`Executor` decides *where* — inline on the
coordinator, on a thread pool, or on a process pool.  Separating the two
lets one driver loop serve every parallel scheduler, and keeps everything
process-specific (picklability checks, task bundling, worker crash
translation) in this module.

The process backend and the picklability contract
-------------------------------------------------
A task may run in a worker process only when its payload is **picklable by
value**: the function must be importable module-level (no lambdas or
closures) and every argument a plain value — numbers, strings, tuples,
dtype enums, small arrays, ``TaskRef`` placeholders.  This is exactly the
contract :class:`~repro.frame.source.SourcePartition` already imposes for
cross-call caching, which is why streaming CSV partitions
(``_read_csv_slice(path, byte_range, …)``) ship to workers while in-memory
partition slices (which close over the resident ``DataFrame``) do not.

To keep IPC from swamping the win, shippable work is dispatched as
**bundles**: one value-described source task (a CSV chunk parse) plus every
sketch task that consumes only it.  The worker parses the chunk once, runs
all its sketches, and sends back only the small sketch results — the parsed
chunk itself crosses the process boundary only when a coordinator-side task
still needs it.  Combine and finalize tasks stay on the coordinator: they
are tiny merges, and shipping them would pay a round trip per tree level.
"""

from __future__ import annotations

import enum
import pickle
import sys
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.graph.task import Task, TaskRef
from repro.utils import default_worker_count

#: Upper bound on the estimated argument payload of a task shipped to a
#: worker process.  Anything larger (most importantly: tasks closing over an
#: in-memory DataFrame) runs on the coordinator instead — the hybrid
#: dispatch that keeps tiny graphs from drowning in IPC.
MAX_SHIP_PAYLOAD_BYTES = 1 << 20


# --------------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------------- #
class Executor:
    """Where submitted callables run.  Subclasses wrap a worker pool."""

    name = "base"

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = int(max_workers) if max_workers is not None \
            else default_worker_count()

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Run ``fn(*args)`` on the backing pool and return its future."""
        raise NotImplementedError

    def discard(self) -> None:
        """Drop the backing pool (after a crash); the next submit rebuilds it."""

    def close(self) -> None:
        """Shut the backing pool down."""

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


class ThreadExecutor(Executor):
    """A bounded thread pool (the default backend; GIL-sharing workers)."""

    name = "threaded"

    def __init__(self, max_workers: Optional[int] = None):
        super().__init__(max_workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._pool.submit(fn, *args)

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)


class ProcessExecutor(Executor):
    """A bounded process pool with lazy startup and broken-pool recovery.

    Worker pools are **process-wide**, shared by every ProcessExecutor with
    the same worker count: forking workers costs tens of milliseconds, and
    each EDA call builds a fresh engine (hence a fresh scheduler), so
    per-scheduler pools would respawn workers on every interactive call.
    The pool is created on the first submit, reused across calls, and torn
    down by ``concurrent.futures``' atexit hook; :meth:`close` therefore
    deliberately does *not* stop workers another engine may be using.
    After a worker crash the pool is discarded; the next submit starts a
    fresh one, so one poisoned task cannot wedge the rest of the process.
    """

    name = "process"

    _shared_pools: Dict[int, ProcessPoolExecutor] = {}
    _shared_lock = threading.Lock()

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        cls = type(self)
        with cls._shared_lock:
            pool = cls._shared_pools.get(self.max_workers)
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=self.max_workers)
                cls._shared_pools[self.max_workers] = pool
        return pool.submit(fn, *args)

    def discard(self) -> None:
        cls = type(self)
        with cls._shared_lock:
            pool = cls._shared_pools.pop(self.max_workers, None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """No-op: the pool is shared process-wide (see the class docstring)."""


# --------------------------------------------------------------------------- #
# Worker-side bundle execution (must be module-level and picklable)
# --------------------------------------------------------------------------- #
@dataclass
class BundleOutcome:
    """What one shipped bundle produced (crosses the process boundary).

    Task failures are reported *in* the outcome rather than raised, so the
    failing task's key survives the trip and arbitrary (possibly
    unpicklable) exceptions cannot poison the future machinery.
    """

    root: Any = None
    members: Dict[str, Any] = field(default_factory=dict)
    error_key: Optional[str] = None
    error: Optional[BaseException] = None


def _portable_error(error: BaseException) -> BaseException:
    """Return *error* if it survives pickling, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return RuntimeError(f"{type(error).__name__}: {error}")


def run_task_bundle(root_task: Task, member_tasks: Sequence[Task],
                    return_root: bool) -> BundleOutcome:
    """Execute one bundle in a worker process.

    Runs the dependency-free *root_task* (a chunk parse / slice), then each
    member with the root's value substituted for its ``TaskRef``.  The root
    value is echoed back only when ``return_root`` is set — when every
    consumer is in the bundle, the (large) chunk never crosses the process
    boundary.
    """
    results: Dict[str, Any] = {}
    try:
        results[root_task.key] = root_task.execute({})
    except BaseException as error:  # noqa: BLE001 - reported with the task key
        return BundleOutcome(error_key=root_task.key,
                             error=_portable_error(error))
    members: Dict[str, Any] = {}
    for task in member_tasks:
        try:
            members[task.key] = task.execute(results)
        except BaseException as error:  # noqa: BLE001
            return BundleOutcome(error_key=task.key,
                                 error=_portable_error(error))
    return BundleOutcome(root=results[root_task.key] if return_root else None,
                         members=members)


# --------------------------------------------------------------------------- #
# Shippability: can this task run in a worker process?
# --------------------------------------------------------------------------- #
_SHIPPABLE_FUNCS: Dict[Callable[..., Any], bool] = {}


def _shippable_func(func: Callable[..., Any]) -> bool:
    """Whether *func* pickles by reference: importable and module-level."""
    module_name = getattr(func, "__module__", None)
    qualname = getattr(func, "__qualname__", "")
    if not module_name or not qualname or "<" in qualname:
        # Lambdas, closures and fused tasks are per-call objects; besides
        # being unshippable, caching them would pin them (and anything they
        # capture) for the life of the process — so they never enter the
        # cache.  Module-level functions are process-permanent, so a strong
        # reference costs nothing.
        return False
    cached = _SHIPPABLE_FUNCS.get(func)
    if cached is not None:
        return cached
    target: Any = sys.modules.get(module_name)
    for part in qualname.split("."):
        target = getattr(target, part, None)
    shippable = target is func
    _SHIPPABLE_FUNCS[func] = shippable
    return shippable


def _payload_bytes(value: Any) -> Optional[int]:
    """Estimated pickled size of one argument, or None if not value-like.

    The allowlist mirrors what the cross-call cache can fingerprint: plain
    scalars, strings, enums (dtype markers), small arrays and the standard
    containers.  Anything else — DataFrames, Columns, open handles, user
    objects — returns None and pins the task to the coordinator.
    """
    if value is None or isinstance(value, (bool, int, float, complex)):
        return 16
    if isinstance(value, (str, bytes)):
        return 49 + len(value)
    if isinstance(value, (enum.Enum, np.generic)):
        return 48
    if isinstance(value, TaskRef):
        return 64
    if isinstance(value, np.ndarray):
        return int(value.nbytes) + 128
    if isinstance(value, (tuple, list, set, frozenset)):
        total = 64
        for item in value:
            inner = _payload_bytes(item)
            if inner is None:
                return None
            total += inner
        return total
    if isinstance(value, dict):
        total = 64
        for item_key, item in value.items():
            inner_key = _payload_bytes(item_key)
            inner = _payload_bytes(item)
            if inner_key is None or inner is None:
                return None
            total += inner_key + inner
        return total
    return None


def can_run_in_worker(task: Task) -> bool:
    """Whether *task*'s payload may be shipped to a worker process.

    True when the function pickles by reference and every argument is a
    plain value (``TaskRef`` placeholders included — the bundle resolves
    them worker-side) whose combined estimated size stays under
    :data:`MAX_SHIP_PAYLOAD_BYTES`.  This is the ``can_run_in_worker``
    contract of the hybrid dispatch: value-described chunk work ships,
    everything holding live objects stays on the coordinator.
    """
    if not _shippable_func(task.func):
        return False
    total = 0
    for value in task.args:
        size = _payload_bytes(value)
        if size is None:
            return False
        total += size
    for value in task.kwargs.values():
        size = _payload_bytes(value)
        if size is None:
            return False
        total += size
    return total <= MAX_SHIP_PAYLOAD_BYTES


__all__ = [
    "BundleOutcome",
    "Executor",
    "MAX_SHIP_PAYLOAD_BYTES",
    "ProcessExecutor",
    "ThreadExecutor",
    "can_run_in_worker",
    "run_task_bundle",
]
