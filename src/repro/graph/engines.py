"""Execution engines compared in Figure 6(a) of the paper.

The paper justifies choosing Dask over Modin, Koalas and PySpark by comparing
how long each takes to compute the intermediates of ``plot(df)``.  The three
strategies differ in *how* they execute the same logical work:

* :class:`LazyEngine` — DataPrep.EDA's strategy: merge everything into one
  graph, optimize it (cull + CSE), execute with the threaded scheduler.
* :class:`EagerEngine` — Modin's strategy: each requested value is computed
  immediately with its own graph, so common sub-computations are repeated and
  nothing is co-scheduled.
* :class:`ClusterRPCEngine` — Koalas/PySpark on a single node: lazy overall,
  but every task dispatch pays an RPC/scheduling latency, which dominates on
  small data.

Absolute times differ from the paper (the substrates are pure Python), but
the ordering and the gap structure of Figure 6(a) are reproduced because they
follow from the strategies, not from the specific frameworks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import GraphError
from repro.graph.cache import TaskCache
from repro.graph.delayed import Delayed, compute
from repro.graph.optimize import OptimizeStats
from repro.graph.scheduler import (
    RunStats,
    SynchronousScheduler,
    get_scheduler,
)


@dataclass
class ExecutionReport:
    """What an engine did for one batch of requested values.

    ``tasks_executed`` counts tasks that actually ran; the three avoidance
    mechanisms each have their own counter: culling and CSE are folded into
    the gap between ``tasks_before_optimization`` and the optimized graph,
    while ``cache_hits`` / ``tasks_skipped_by_cache`` report the cross-call
    intermediate cache (tasks served from cache, and their exclusive
    ancestors that never ran because of it).
    """

    engine: str
    requested: int
    graphs_built: int
    tasks_executed: int
    tasks_before_optimization: int
    shared_tasks: int = 0
    cache_hits: int = 0
    tasks_skipped_by_cache: int = 0
    #: Executed partition materializations that carried a column projection
    #: (parsed/sliced only the columns the consuming reductions declared).
    projected_parses: int = 0
    #: Executed partition materializations that parsed every column.
    full_parses: int = 0
    #: Planning-side delta: columns avoided across the projected partition
    #: tasks *newly built* for this batch — sum of (table width - projected
    #: width) per new task.  A stage that reuses an earlier stage's
    #: projection builds no new tasks, so it can legitimately report
    #: ``projected_parses > 0`` with ``columns_pruned == 0``; the
    #: authoritative per-call total lives in ``meta["projection"]`` /
    #: ``Report.projection_stats``.  Attached by the compute context.
    columns_pruned: int = 0
    #: Planning-side predicate-pushdown deltas for this batch, attached by
    #: the compute context like ``columns_pruned``: chunks the zone maps
    #: dropped before any bytes were read (counted once per newly built
    #: partition set), and rows the pushed-down filter removed from the
    #: chunks that did parse.  The authoritative per-call totals live in
    #: ``meta["predicate"]`` / ``Report.predicate_stats``.
    chunks_skipped: int = 0
    rows_filtered: int = 0
    #: Parsed-chunk disk-sidecar deltas for this batch, attached by the
    #: compute context from the sidecar's process-local counters
    #: (:func:`repro.frame.sidecar.stats_snapshot`): partition parses
    #: served from the binary sidecar, parses that decoded CSV, and the
    #: CSV bytes the hits avoided.  Coordinator-process counts only; the
    #: per-call totals live in ``meta["sidecar"]`` /
    #: ``Report.sidecar_stats``.
    sidecar_hits: int = 0
    sidecar_misses: int = 0
    bytes_decoded_avoided: int = 0
    #: Incremental-refresh accounting over partition parse tasks: chunks
    #: whose per-chunk-stamp cache key answered without running, chunks
    #: that executed, and the file bytes those executions read.  After a
    #: ``refresh()`` following an append, ``chunks_reused`` covers the old
    #: chunks and ``chunks_new`` the appended ones; the per-call totals
    #: live in ``meta["incremental"]`` / ``Report.incremental_stats``.
    chunks_reused: int = 0
    chunks_new: int = 0
    bytes_reparsed: int = 0
    #: Remote-backend wire accounting (``compute.scheduler = "remote"``;
    #: zero elsewhere): task-frame bytes shipped to socket workers,
    #: result-frame bytes received back, bundles re-dispatched after a
    #: worker loss, and per-worker busy fraction of the run.
    shipped_bytes: int = 0
    bytes_received: int = 0
    redispatched: int = 0
    worker_utilization: Dict[str, float] = field(default_factory=dict)

    @property
    def sharing_ratio(self) -> float:
        """Fraction of tasks eliminated by sharing (0 when nothing shared)."""
        if self.tasks_before_optimization == 0:
            return 0.0
        return self.shared_tasks / self.tasks_before_optimization

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of post-optimization tasks avoided via the cache."""
        avoided = self.cache_hits + self.tasks_skipped_by_cache
        planned = self.tasks_executed + avoided
        return avoided / planned if planned else 0.0


class Engine:
    """Base class: an engine turns a batch of Delayed values into results."""

    name = "base"

    def compute(self, values: Sequence[Delayed]) -> List[Any]:
        """Compute all values and return them in order."""
        raise NotImplementedError

    def compute_with_report(self, values: Sequence[Delayed]
                            ) -> tuple[List[Any], ExecutionReport]:
        """Compute all values and also report how much work was done."""
        raise NotImplementedError

    def _run_single_graph(self, values: Sequence[Delayed], **compute_kwargs: Any
                          ) -> tuple[List[Any], ExecutionReport]:
        """One merged-graph compute + report, shared by the lazy engines.

        Requires ``self.scheduler``; reads its per-run cache statistics and
        folds them into the report so every engine accounts for the
        cross-call cache identically.
        """
        self.scheduler.last_run = None
        results, stats = compute(*values, scheduler=self.scheduler,
                                 return_stats=True, **compute_kwargs)
        run = self.scheduler.last_run or RunStats(
            planned=stats.output_tasks, executed=stats.output_tasks)
        report = ExecutionReport(
            engine=self.name, requested=len(values), graphs_built=1,
            tasks_executed=run.executed,
            tasks_before_optimization=stats.input_tasks,
            shared_tasks=stats.merged_by_cse,
            cache_hits=run.cache_hits,
            tasks_skipped_by_cache=run.skipped,
            projected_parses=run.projected_parses,
            full_parses=run.full_parses,
            chunks_reused=run.chunks_reused,
            chunks_new=run.chunks_new,
            bytes_reparsed=run.bytes_reparsed,
            shipped_bytes=run.shipped_bytes,
            bytes_received=run.bytes_received,
            redispatched=run.redispatched,
            worker_utilization=dict(run.worker_utilization))
        return results, report


class LazyEngine(Engine):
    """Single shared graph + optimization + parallel execution (Dask-like).

    *scheduler* selects the execution backend by registry name —
    ``"threaded"`` (default), ``"process"`` or ``"synchronous"`` — which is
    how the ``compute.scheduler`` config key reaches the graph layer.
    """

    name = "lazy"

    def __init__(self, max_workers: Optional[int] = None, enable_cse: bool = True,
                 enable_fusion: bool = False, cache: Optional[TaskCache] = None,
                 scheduler: str = "threaded",
                 scheduler_options: Optional[Dict[str, Any]] = None):
        self.scheduler = get_scheduler(scheduler, max_workers=max_workers,
                                       cache=cache, **(scheduler_options or {}))
        self.enable_cse = enable_cse
        self.enable_fusion = enable_fusion

    def compute(self, values: Sequence[Delayed]) -> List[Any]:
        return compute(*values, scheduler=self.scheduler,
                       enable_cse=self.enable_cse,
                       enable_fusion=self.enable_fusion)

    def compute_with_report(self, values: Sequence[Delayed]
                            ) -> tuple[List[Any], ExecutionReport]:
        return self._run_single_graph(values, enable_cse=self.enable_cse,
                                      enable_fusion=self.enable_fusion)


class EagerEngine(Engine):
    """One graph per requested value, no cross-value sharing (Modin-like)."""

    name = "eager"

    def __init__(self, max_workers: Optional[int] = None,
                 cache: Optional[TaskCache] = None,
                 scheduler: str = "threaded",
                 scheduler_options: Optional[Dict[str, Any]] = None):
        # Modin parallelizes inside one operation but cannot co-schedule
        # separate operations; a parallel scheduler per value models that.
        self.scheduler = get_scheduler(scheduler, max_workers=max_workers,
                                       cache=cache, **(scheduler_options or {}))

    def compute(self, values: Sequence[Delayed]) -> List[Any]:
        return [compute(value, scheduler=self.scheduler, enable_cse=False)[0]
                for value in values]

    def compute_with_report(self, values: Sequence[Delayed]
                            ) -> tuple[List[Any], ExecutionReport]:
        results = []
        total_executed = 0
        total_before = 0
        total_hits = 0
        total_skipped = 0
        total_projected = 0
        total_full = 0
        total_reused = 0
        total_new = 0
        total_reparsed = 0
        total_shipped_bytes = 0
        total_received = 0
        total_redispatched = 0
        utilization: Dict[str, float] = {}
        for value in values:
            self.scheduler.last_run = None
            (result,), stats = compute(value, scheduler=self.scheduler,
                                       enable_cse=False, return_stats=True)
            results.append(result)
            run = self.scheduler.last_run or RunStats(
                planned=stats.output_tasks, executed=stats.output_tasks)
            total_executed += run.executed
            # The true pre-optimization size of this value's graph, so the
            # report measures sharing instead of defining it away.
            total_before += stats.input_tasks
            total_hits += run.cache_hits
            total_skipped += run.skipped
            total_projected += run.projected_parses
            total_full += run.full_parses
            total_reused += run.chunks_reused
            total_new += run.chunks_new
            total_reparsed += run.bytes_reparsed
            total_shipped_bytes += run.shipped_bytes
            total_received += run.bytes_received
            total_redispatched += run.redispatched
            for worker_id, busy in run.worker_utilization.items():
                utilization[worker_id] = max(utilization.get(worker_id, 0.0),
                                             busy)
        report = ExecutionReport(
            engine=self.name, requested=len(values), graphs_built=len(values),
            tasks_executed=total_executed, tasks_before_optimization=total_before,
            shared_tasks=0, cache_hits=total_hits,
            tasks_skipped_by_cache=total_skipped,
            projected_parses=total_projected, full_parses=total_full,
            chunks_reused=total_reused, chunks_new=total_new,
            bytes_reparsed=total_reparsed,
            shipped_bytes=total_shipped_bytes, bytes_received=total_received,
            redispatched=total_redispatched, worker_utilization=utilization)
        return results, report


class ClusterRPCEngine(Engine):
    """Lazy execution with per-task dispatch latency (Koalas/PySpark-like).

    *dispatch_latency* models the driver/executor round trip a cluster
    framework pays per task even when everything runs on one node.  The
    default (10 ms) is deliberately modest; it still dominates when the data is
    tiny, which is exactly the paper's point.
    """

    name = "cluster-rpc"

    def __init__(self, dispatch_latency: float = 0.01, enable_cse: bool = True,
                 cache: Optional[TaskCache] = None):
        self.scheduler = SynchronousScheduler(dispatch_latency=dispatch_latency,
                                              cache=cache)
        self.enable_cse = enable_cse
        self.dispatch_latency = dispatch_latency

    def compute(self, values: Sequence[Delayed]) -> List[Any]:
        return compute(*values, scheduler=self.scheduler, enable_cse=self.enable_cse)

    def compute_with_report(self, values: Sequence[Delayed]
                            ) -> tuple[List[Any], ExecutionReport]:
        return self._run_single_graph(values, enable_cse=self.enable_cse)


_ENGINES = {
    LazyEngine.name: LazyEngine,
    EagerEngine.name: EagerEngine,
    ClusterRPCEngine.name: ClusterRPCEngine,
}


def available_engines() -> List[str]:
    """Names of the registered engines (Figure 6a's x-axis)."""
    return sorted(_ENGINES)


def get_engine(name: str, **kwargs: Any) -> Engine:
    """Instantiate an engine by name."""
    try:
        factory = _ENGINES[name]
    except KeyError:
        raise GraphError(
            f"unknown engine {name!r}; available: {available_engines()}") from None
    return factory(**kwargs)
