"""Execution engines compared in Figure 6(a) of the paper.

The paper justifies choosing Dask over Modin, Koalas and PySpark by comparing
how long each takes to compute the intermediates of ``plot(df)``.  The three
strategies differ in *how* they execute the same logical work:

* :class:`LazyEngine` — DataPrep.EDA's strategy: merge everything into one
  graph, optimize it (cull + CSE), execute with the threaded scheduler.
* :class:`EagerEngine` — Modin's strategy: each requested value is computed
  immediately with its own graph, so common sub-computations are repeated and
  nothing is co-scheduled.
* :class:`ClusterRPCEngine` — Koalas/PySpark on a single node: lazy overall,
  but every task dispatch pays an RPC/scheduling latency, which dominates on
  small data.

Absolute times differ from the paper (the substrates are pure Python), but
the ordering and the gap structure of Figure 6(a) are reproduced because they
follow from the strategies, not from the specific frameworks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import GraphError
from repro.graph.delayed import Delayed, compute
from repro.graph.optimize import OptimizeStats
from repro.graph.scheduler import SynchronousScheduler, ThreadedScheduler


@dataclass
class ExecutionReport:
    """What an engine did for one batch of requested values."""

    engine: str
    requested: int
    graphs_built: int
    tasks_executed: int
    tasks_before_optimization: int
    shared_tasks: int = 0

    @property
    def sharing_ratio(self) -> float:
        """Fraction of tasks eliminated by sharing (0 when nothing shared)."""
        if self.tasks_before_optimization == 0:
            return 0.0
        return self.shared_tasks / self.tasks_before_optimization


class Engine:
    """Base class: an engine turns a batch of Delayed values into results."""

    name = "base"

    def compute(self, values: Sequence[Delayed]) -> List[Any]:
        """Compute all values and return them in order."""
        raise NotImplementedError

    def compute_with_report(self, values: Sequence[Delayed]
                            ) -> tuple[List[Any], ExecutionReport]:
        """Compute all values and also report how much work was done."""
        raise NotImplementedError


class LazyEngine(Engine):
    """Single shared graph + optimization + threaded execution (Dask-like)."""

    name = "lazy"

    def __init__(self, max_workers: Optional[int] = None, enable_cse: bool = True,
                 enable_fusion: bool = False):
        self.scheduler = ThreadedScheduler(max_workers=max_workers)
        self.enable_cse = enable_cse
        self.enable_fusion = enable_fusion

    def compute(self, values: Sequence[Delayed]) -> List[Any]:
        return compute(*values, scheduler=self.scheduler,
                       enable_cse=self.enable_cse,
                       enable_fusion=self.enable_fusion)

    def compute_with_report(self, values: Sequence[Delayed]
                            ) -> tuple[List[Any], ExecutionReport]:
        results, stats = compute(*values, scheduler=self.scheduler,
                                 enable_cse=self.enable_cse,
                                 enable_fusion=self.enable_fusion,
                                 return_stats=True)
        report = ExecutionReport(
            engine=self.name, requested=len(values), graphs_built=1,
            tasks_executed=stats.output_tasks,
            tasks_before_optimization=stats.input_tasks,
            shared_tasks=stats.merged_by_cse)
        return results, report


class EagerEngine(Engine):
    """One graph per requested value, no cross-value sharing (Modin-like)."""

    name = "eager"

    def __init__(self, max_workers: Optional[int] = None):
        # Modin parallelizes inside one operation but cannot co-schedule
        # separate operations; a threaded scheduler per value models that.
        self.scheduler = ThreadedScheduler(max_workers=max_workers)

    def compute(self, values: Sequence[Delayed]) -> List[Any]:
        return [compute(value, scheduler=self.scheduler, enable_cse=False)[0]
                for value in values]

    def compute_with_report(self, values: Sequence[Delayed]
                            ) -> tuple[List[Any], ExecutionReport]:
        results = []
        total_tasks = 0
        for value in values:
            (result,), stats = compute(value, scheduler=self.scheduler,
                                       enable_cse=False, return_stats=True)
            results.append(result)
            total_tasks += stats.output_tasks
        report = ExecutionReport(
            engine=self.name, requested=len(values), graphs_built=len(values),
            tasks_executed=total_tasks, tasks_before_optimization=total_tasks,
            shared_tasks=0)
        return results, report


class ClusterRPCEngine(Engine):
    """Lazy execution with per-task dispatch latency (Koalas/PySpark-like).

    *dispatch_latency* models the driver/executor round trip a cluster
    framework pays per task even when everything runs on one node.  The
    default (10 ms) is deliberately modest; it still dominates when the data is
    tiny, which is exactly the paper's point.
    """

    name = "cluster-rpc"

    def __init__(self, dispatch_latency: float = 0.01, enable_cse: bool = True):
        self.scheduler = SynchronousScheduler(dispatch_latency=dispatch_latency)
        self.enable_cse = enable_cse
        self.dispatch_latency = dispatch_latency

    def compute(self, values: Sequence[Delayed]) -> List[Any]:
        return compute(*values, scheduler=self.scheduler, enable_cse=self.enable_cse)

    def compute_with_report(self, values: Sequence[Delayed]
                            ) -> tuple[List[Any], ExecutionReport]:
        results, stats = compute(*values, scheduler=self.scheduler,
                                 enable_cse=self.enable_cse, return_stats=True)
        report = ExecutionReport(
            engine=self.name, requested=len(values), graphs_built=1,
            tasks_executed=stats.output_tasks,
            tasks_before_optimization=stats.input_tasks,
            shared_tasks=stats.merged_by_cse)
        return results, report


_ENGINES = {
    LazyEngine.name: LazyEngine,
    EagerEngine.name: EagerEngine,
    ClusterRPCEngine.name: ClusterRPCEngine,
}


def available_engines() -> List[str]:
    """Names of the registered engines (Figure 6a's x-axis)."""
    return sorted(_ENGINES)


def get_engine(name: str, **kwargs: Any) -> Engine:
    """Instantiate an engine by name."""
    try:
        factory = _ENGINES[name]
    except KeyError:
        raise GraphError(
            f"unknown engine {name!r}; available: {available_engines()}") from None
    return factory(**kwargs)
