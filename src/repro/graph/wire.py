"""Wire protocol of the remote execution backend.

The :class:`~repro.graph.remote.RemoteScheduler` talks to its worker
processes over plain TCP sockets; this module defines the framing both
sides speak.  It deliberately knows nothing about tasks or schedulers —
only bytes — so the protocol can be unit-tested against a socketpair and
reused by any future transport.

Frame layout (all integers big-endian)::

    +-------+------+----------------+----------------+-----------------+
    | magic | type | payload length | CRC32(payload) | payload bytes   |
    | 4 B   | 1 B  | 4 B            | 4 B            | length B        |
    +-------+------+----------------+----------------+-----------------+

* ``magic`` (``b"RWP2"``) names the protocol and its version; a frame
  with any other magic is rejected immediately, which is what keeps a
  stray client (or a corrupted stream) from being misread as task
  traffic.
* ``type`` is one of the ``MSG_*`` constants below.
* the CRC32 checksum covers the payload only; a mismatch raises
  :class:`WireError` — the receiving side treats the connection as
  poisoned and closes it rather than guessing at intent.

Trust model
-----------
Pickle can execute arbitrary code when loaded, so **nothing pickled is
deserialized before the peer has authenticated**.  Both sides prove
knowledge of a shared secret with an HMAC-SHA256 challenge-response
(the scheme of :mod:`multiprocessing.connection`): the coordinator sends
a random ``CHALLENGE`` nonce, the worker answers inside its ``HELLO``,
and the coordinator's ``WELCOME`` answers the worker's counter-nonce —
so a rogue client can neither become a worker (and receive task data)
nor crash the coordinator with a crafted payload, and a worker refuses
task frames from a coordinator that cannot prove the key.  Handshake
payloads (``HELLO``/``WELCOME``, plus the tiny ``STARTED`` control
frame) are UTF-8 JSON (:func:`dump_json` / :func:`load_json`), never
pickle.

Authentication is a *secret* check, not transport encryption: task
payloads still travel in the clear, so bind routable addresses only on
networks you trust (or tunnel the port).

Post-auth payloads are pickled python objects (:func:`dump_payload` /
:func:`load_payload`): the remote backend only ever ships values that
already satisfy the process backend's picklability contract
(``can_run_in_worker``), so pickle is both sufficient and the same
serialization the in-process pool uses.
"""

from __future__ import annotations

import hmac
import io
import json
import pickle
import socket
import struct
import zlib
from typing import Any, Tuple

from repro.errors import GraphError

#: Protocol name + version.  Bump the digit when the frame layout changes.
MAGIC = b"RWP2"

_HEADER = struct.Struct("!4sBII")

#: Frames larger than this are rejected without being read: a genuine
#: result (sketch states, small chunk frames) is megabytes at most, so a
#: larger announced length is a corrupted or hostile stream.
MAX_FRAME_BYTES = 256 * 1024 * 1024

# Message types.
MSG_HELLO = 1      # worker -> coordinator: JSON {"id", "pid", "host",
#                    "digest" (answer to CHALLENGE), "nonce" (counter-nonce)}
MSG_TASK = 2       # coordinator -> worker: (task_id, func, args)
MSG_RESULT = 3     # worker -> coordinator: (task_id, ok, value_or_error)
MSG_PING = 4       # coordinator -> worker: b"" (liveness probe)
MSG_PONG = 5       # worker -> coordinator: b""
MSG_SHUTDOWN = 6   # coordinator -> worker: b"" (graceful drain)
MSG_CHALLENGE = 7  # coordinator -> worker: random nonce bytes (first frame)
MSG_WELCOME = 8    # coordinator -> worker: JSON {"digest"} answering HELLO's
#                    counter-nonce; admission to the pool
MSG_STARTED = 9    # worker -> coordinator: JSON {"task"}: execution has begun

_KNOWN_TYPES = frozenset({MSG_HELLO, MSG_TASK, MSG_RESULT, MSG_PING,
                          MSG_PONG, MSG_SHUTDOWN, MSG_CHALLENGE,
                          MSG_WELCOME, MSG_STARTED})

#: Size of a challenge nonce.
NONCE_BYTES = 32


class WireError(GraphError):
    """A malformed, corrupted or oversized frame was received."""


class ConnectionClosed(WireError):
    """The peer closed the connection (possibly mid-frame)."""


def dump_payload(value: Any) -> bytes:
    """Serialize a message payload (pickle, highest protocol)."""
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def load_payload(blob: bytes) -> Any:
    """Deserialize a message payload, wrapping failures as WireError.

    Pickle loading can run arbitrary code, so callers must only pass
    bytes received *after* the peer authenticated (see the trust model in
    the module docstring); handshake payloads go through
    :func:`load_json` instead.
    """
    try:
        return pickle.loads(blob)
    except Exception as error:  # noqa: BLE001 - any unpickling failure
        raise WireError(f"undecodable payload: {error}") from error


def dump_json(value: Any) -> bytes:
    """Serialize a control payload as UTF-8 JSON (pre-auth safe)."""
    return json.dumps(value, separators=(",", ":")).encode("utf-8")


def load_json(blob: bytes) -> Any:
    """Deserialize a JSON control payload, wrapping failures as WireError.

    Unlike :func:`load_payload` this cannot execute code, which is why
    the handshake frames — the only frames read from a peer that has not
    yet proven the shared key — use it exclusively.
    """
    try:
        return json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise WireError(f"undecodable JSON payload: {error}") from error


def compute_digest(authkey: str, nonce: bytes) -> str:
    """HMAC-SHA256 proof of *authkey* over a challenge *nonce* (hex)."""
    return hmac.new(authkey.encode("utf-8"), nonce, "sha256").hexdigest()


def verify_digest(authkey: str, nonce: bytes, digest: Any) -> bool:
    """Constant-time check of a peer's answer to a challenge nonce."""
    if not isinstance(digest, str):
        return False
    return hmac.compare_digest(compute_digest(authkey, nonce), digest)


def pack_frame(msg_type: int, payload: bytes = b"") -> bytes:
    """Build one wire frame (header + checksummed payload)."""
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"payload of {len(payload)} bytes exceeds the "
                        f"{MAX_FRAME_BYTES}-byte frame limit")
    header = _HEADER.pack(MAGIC, msg_type, len(payload),
                          zlib.crc32(payload) & 0xFFFFFFFF)
    return header + payload


def send_frame(sock: socket.socket, msg_type: int, payload: bytes = b"") -> int:
    """Send one frame over *sock*; returns the bytes put on the wire."""
    frame = pack_frame(msg_type, payload)
    sock.sendall(frame)
    return len(frame)


def _recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    """Read exactly *n_bytes* from *sock* or raise ConnectionClosed."""
    buffer = io.BytesIO()
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                "connection closed" if buffer.tell() == 0
                else "connection closed mid-frame")
        buffer.write(chunk)
        remaining -= len(chunk)
    return buffer.getvalue()


def recv_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Read one complete frame, validating magic, type and checksum.

    Raises :class:`ConnectionClosed` on a clean EOF before the header and
    :class:`WireError` on any malformation — the caller must treat the
    connection as unusable after a WireError, because the stream position
    is no longer trustworthy.
    """
    header = _recv_exact(sock, _HEADER.size)
    magic, msg_type, length, checksum = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if msg_type not in _KNOWN_TYPES:
        raise WireError(f"unknown message type {msg_type}")
    if length > MAX_FRAME_BYTES:
        raise WireError(f"announced payload of {length} bytes exceeds the "
                        f"{MAX_FRAME_BYTES}-byte frame limit")
    payload = _recv_exact(sock, length)
    if zlib.crc32(payload) & 0xFFFFFFFF != checksum:
        raise WireError("payload checksum mismatch")
    return msg_type, payload


def parse_address(address: str) -> Tuple[str, int]:
    """Parse a ``host:port`` string, validating the port range."""
    host, colon, port_text = address.rpartition(":")
    if not colon or not host:
        raise WireError(f"address {address!r} is not of the form host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise WireError(f"address {address!r} has a non-integer port") from None
    if not 0 <= port <= 65535:
        raise WireError(f"address {address!r} has an out-of-range port")
    return host, port


__all__ = [
    "MAGIC",
    "MAX_FRAME_BYTES",
    "MSG_CHALLENGE",
    "MSG_HELLO",
    "MSG_PING",
    "MSG_PONG",
    "MSG_RESULT",
    "MSG_SHUTDOWN",
    "MSG_STARTED",
    "MSG_TASK",
    "MSG_WELCOME",
    "NONCE_BYTES",
    "ConnectionClosed",
    "WireError",
    "compute_digest",
    "dump_json",
    "dump_payload",
    "load_json",
    "load_payload",
    "pack_frame",
    "parse_address",
    "recv_frame",
    "send_frame",
    "verify_digest",
]
