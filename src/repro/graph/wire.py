"""Wire protocol of the remote execution backend.

The :class:`~repro.graph.remote.RemoteScheduler` talks to its worker
processes over plain TCP sockets; this module defines the framing both
sides speak.  It deliberately knows nothing about tasks or schedulers —
only bytes — so the protocol can be unit-tested against a socketpair and
reused by any future transport.

Frame layout (all integers big-endian)::

    +-------+------+----------------+----------------+-----------------+
    | magic | type | payload length | CRC32(payload) | payload bytes   |
    | 4 B   | 1 B  | 4 B            | 4 B            | length B        |
    +-------+------+----------------+----------------+-----------------+

* ``magic`` (``b"RWP1"``) names the protocol and its version; a frame
  with any other magic is rejected immediately, which is what keeps a
  stray client (or a corrupted stream) from being misread as task
  traffic.
* ``type`` is one of the ``MSG_*`` constants below.
* the CRC32 checksum covers the payload only; a mismatch raises
  :class:`WireError` — the receiving side treats the connection as
  poisoned and closes it rather than guessing at intent.

Payloads are pickled python objects (:func:`dump_payload` /
:func:`load_payload`): the remote backend only ever ships values that
already satisfy the process backend's picklability contract
(``can_run_in_worker``), so pickle is both sufficient and the same
serialization the in-process pool uses.
"""

from __future__ import annotations

import io
import pickle
import socket
import struct
import zlib
from typing import Any, Tuple

from repro.errors import GraphError

#: Protocol name + version.  Bump the digit when the frame layout changes.
MAGIC = b"RWP1"

_HEADER = struct.Struct("!4sBII")

#: Frames larger than this are rejected without being read: a genuine
#: result (sketch states, small chunk frames) is megabytes at most, so a
#: larger announced length is a corrupted or hostile stream.
MAX_FRAME_BYTES = 256 * 1024 * 1024

# Message types.
MSG_HELLO = 1      # worker -> coordinator: {"id", "pid", "host"}
MSG_TASK = 2       # coordinator -> worker: (task_id, func, args)
MSG_RESULT = 3     # worker -> coordinator: (task_id, ok, value_or_error)
MSG_PING = 4       # coordinator -> worker: b"" (liveness probe)
MSG_PONG = 5       # worker -> coordinator: b""
MSG_SHUTDOWN = 6   # coordinator -> worker: b"" (graceful drain)

_KNOWN_TYPES = frozenset({MSG_HELLO, MSG_TASK, MSG_RESULT, MSG_PING,
                          MSG_PONG, MSG_SHUTDOWN})


class WireError(GraphError):
    """A malformed, corrupted or oversized frame was received."""


class ConnectionClosed(WireError):
    """The peer closed the connection (possibly mid-frame)."""


def dump_payload(value: Any) -> bytes:
    """Serialize a message payload (pickle, highest protocol)."""
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def load_payload(blob: bytes) -> Any:
    """Deserialize a message payload, wrapping failures as WireError."""
    try:
        return pickle.loads(blob)
    except Exception as error:  # noqa: BLE001 - any unpickling failure
        raise WireError(f"undecodable payload: {error}") from error


def pack_frame(msg_type: int, payload: bytes = b"") -> bytes:
    """Build one wire frame (header + checksummed payload)."""
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"payload of {len(payload)} bytes exceeds the "
                        f"{MAX_FRAME_BYTES}-byte frame limit")
    header = _HEADER.pack(MAGIC, msg_type, len(payload),
                          zlib.crc32(payload) & 0xFFFFFFFF)
    return header + payload


def send_frame(sock: socket.socket, msg_type: int, payload: bytes = b"") -> int:
    """Send one frame over *sock*; returns the bytes put on the wire."""
    frame = pack_frame(msg_type, payload)
    sock.sendall(frame)
    return len(frame)


def _recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    """Read exactly *n_bytes* from *sock* or raise ConnectionClosed."""
    buffer = io.BytesIO()
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                "connection closed" if buffer.tell() == 0
                else "connection closed mid-frame")
        buffer.write(chunk)
        remaining -= len(chunk)
    return buffer.getvalue()


def recv_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Read one complete frame, validating magic, type and checksum.

    Raises :class:`ConnectionClosed` on a clean EOF before the header and
    :class:`WireError` on any malformation — the caller must treat the
    connection as unusable after a WireError, because the stream position
    is no longer trustworthy.
    """
    header = _recv_exact(sock, _HEADER.size)
    magic, msg_type, length, checksum = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if msg_type not in _KNOWN_TYPES:
        raise WireError(f"unknown message type {msg_type}")
    if length > MAX_FRAME_BYTES:
        raise WireError(f"announced payload of {length} bytes exceeds the "
                        f"{MAX_FRAME_BYTES}-byte frame limit")
    payload = _recv_exact(sock, length)
    if zlib.crc32(payload) & 0xFFFFFFFF != checksum:
        raise WireError("payload checksum mismatch")
    return msg_type, payload


def parse_address(address: str) -> Tuple[str, int]:
    """Parse a ``host:port`` string, validating the port range."""
    host, colon, port_text = address.rpartition(":")
    if not colon or not host:
        raise WireError(f"address {address!r} is not of the form host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise WireError(f"address {address!r} has a non-integer port") from None
    if not 0 <= port <= 65535:
        raise WireError(f"address {address!r} has an out-of-range port")
    return host, port


__all__ = [
    "MAGIC",
    "MAX_FRAME_BYTES",
    "MSG_HELLO",
    "MSG_PING",
    "MSG_PONG",
    "MSG_RESULT",
    "MSG_SHUTDOWN",
    "MSG_TASK",
    "ConnectionClosed",
    "WireError",
    "dump_payload",
    "load_payload",
    "pack_frame",
    "parse_address",
    "recv_frame",
    "send_frame",
]
