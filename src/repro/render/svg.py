"""A small SVG plotting backend.

The Render module of the paper uses Bokeh; this environment has no plotting
library, so charts are drawn as standalone SVG.  Only the primitives the EDA
charts need are implemented: linear scales with ticks, bars, lines, points,
rectangles and text.  The output is deliberately simple, self-contained
markup that can be embedded directly into the HTML layout.
"""

from __future__ import annotations

import html
import math
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

#: Default qualitative palette (colour-blind friendly, Bokeh Category10-like).
PALETTE = (
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
    "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
)

#: Sequential palette for heat maps (light to dark blue).
HEAT_PALETTE = (
    "#f7fbff", "#deebf7", "#c6dbef", "#9ecae1", "#6baed6",
    "#4292c6", "#2171b5", "#08519c", "#08306b",
)

#: Diverging palette for correlation heat maps (blue - white - red).
DIVERGING_PALETTE = (
    "#2166ac", "#67a9cf", "#d1e5f0", "#f7f7f7", "#fddbc7", "#ef8a62", "#b2182b",
)


def color_for(index: int) -> str:
    """Categorical colour for a series index."""
    return PALETTE[index % len(PALETTE)]


def sequential_color(value: float) -> str:
    """Colour from the sequential palette for a value in [0, 1]."""
    value = min(max(value, 0.0), 1.0)
    index = int(round(value * (len(HEAT_PALETTE) - 1)))
    return HEAT_PALETTE[index]


def diverging_color(value: float) -> str:
    """Colour from the diverging palette for a value in [-1, 1]."""
    value = min(max(value, -1.0), 1.0)
    index = int(round((value + 1.0) / 2.0 * (len(DIVERGING_PALETTE) - 1)))
    return DIVERGING_PALETTE[index]


@dataclass
class LinearScale:
    """Maps data values in [low, high] onto pixel positions [start, stop]."""

    low: float
    high: float
    start: float
    stop: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.low) or not math.isfinite(self.high):
            self.low, self.high = 0.0, 1.0
        if self.high <= self.low:
            self.high = self.low + 1.0

    def __call__(self, value: float) -> float:
        fraction = (value - self.low) / (self.high - self.low)
        return self.start + fraction * (self.stop - self.start)

    def ticks(self, count: int = 5) -> List[float]:
        """Round tick positions covering the domain."""
        if count < 2:
            return [self.low, self.high]
        span = self.high - self.low
        step = _nice_step(span / (count - 1))
        first = math.ceil(self.low / step) * step
        values = []
        value = first
        while value <= self.high + step * 1e-9:
            values.append(round(value, 10))
            value += step
        return values or [self.low, self.high]


def _nice_step(raw: float) -> float:
    if raw <= 0 or not math.isfinite(raw):
        return 1.0
    magnitude = 10 ** math.floor(math.log10(raw))
    residual = raw / magnitude
    if residual <= 1:
        nice = 1
    elif residual <= 2:
        nice = 2
    elif residual <= 5:
        nice = 5
    else:
        nice = 10
    return nice * magnitude


def format_tick(value: float) -> str:
    """Human-friendly tick label (compact scientific for large magnitudes)."""
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1_000_000 or magnitude < 0.001:
        return f"{value:.1e}"
    if magnitude >= 1000:
        if magnitude >= 10_000:
            return f"{value / 1000:.0f}k"
        return f"{value:,.0f}"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.2f}"


@dataclass
class Canvas:
    """Accumulates SVG elements and serialises them."""

    width: int
    height: int
    elements: List[str] = field(default_factory=list)

    def rect(self, x: float, y: float, width: float, height: float, fill: str,
             opacity: float = 1.0, stroke: str = "none", tooltip: str = "") -> None:
        """Add a rectangle (with an optional hover tooltip)."""
        title = f"<title>{html.escape(tooltip)}</title>" if tooltip else ""
        self.elements.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{max(width, 0):.2f}" '
            f'height="{max(height, 0):.2f}" fill="{fill}" fill-opacity="{opacity}" '
            f'stroke="{stroke}">{title}</rect>')

    def line(self, x1: float, y1: float, x2: float, y2: float, stroke: str,
             width: float = 1.0, dash: str = "") -> None:
        """Add a straight line segment."""
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self.elements.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{stroke}" stroke-width="{width}"{dash_attr}/>')

    def circle(self, x: float, y: float, radius: float, fill: str,
               opacity: float = 1.0, tooltip: str = "") -> None:
        """Add a circle marker."""
        title = f"<title>{html.escape(tooltip)}</title>" if tooltip else ""
        self.elements.append(
            f'<circle cx="{x:.2f}" cy="{y:.2f}" r="{radius:.2f}" fill="{fill}" '
            f'fill-opacity="{opacity}">{title}</circle>')

    def polyline(self, points: Sequence[Tuple[float, float]], stroke: str,
                 width: float = 1.5) -> None:
        """Add a connected line through *points*."""
        if not points:
            return
        path = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self.elements.append(
            f'<polyline points="{path}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>')

    def text(self, x: float, y: float, content: str, size: int = 11,
             anchor: str = "middle", rotate: Optional[float] = None,
             color: str = "#333333", bold: bool = False) -> None:
        """Add a text label."""
        transform = f' transform="rotate({rotate} {x:.2f} {y:.2f})"' if rotate else ""
        weight = ' font-weight="bold"' if bold else ""
        self.elements.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" text-anchor="{anchor}" '
            f'fill="{color}" font-family="Helvetica, Arial, sans-serif"{weight}'
            f'{transform}>{html.escape(str(content))}</text>')

    def to_svg(self) -> str:
        """Serialise the canvas into a standalone ``<svg>`` element."""
        body = "\n".join(self.elements)
        return (f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
                f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
                f'{body}\n</svg>')


@dataclass
class PlotArea:
    """A canvas plus margins, axes helpers and data scales."""

    canvas: Canvas
    x_scale: LinearScale
    y_scale: LinearScale
    margin_left: int = 60
    margin_bottom: int = 44
    margin_top: int = 28
    margin_right: int = 16

    @classmethod
    def create(cls, width: int, height: int, x_domain: Tuple[float, float],
               y_domain: Tuple[float, float], title: str = "",
               x_label: str = "", y_label: str = "") -> "PlotArea":
        """Create a plot area with margins, a title and axis labels."""
        canvas = Canvas(width, height)
        margin_left, margin_bottom, margin_top, margin_right = 60, 44, 28, 16
        x_scale = LinearScale(x_domain[0], x_domain[1], margin_left,
                              width - margin_right)
        y_scale = LinearScale(y_domain[0], y_domain[1], height - margin_bottom,
                              margin_top)
        area = cls(canvas, x_scale, y_scale, margin_left, margin_bottom,
                   margin_top, margin_right)
        if title:
            canvas.text(width / 2, 16, title, size=13, bold=True)
        if x_label:
            canvas.text((margin_left + width - margin_right) / 2, height - 6,
                        x_label, size=11)
        if y_label:
            canvas.text(14, (margin_top + height - margin_bottom) / 2, y_label,
                        size=11, rotate=-90)
        return area

    # ------------------------------------------------------------------ #
    # Axes
    # ------------------------------------------------------------------ #
    def draw_axes(self, x_ticks: bool = True, y_ticks: bool = True) -> None:
        """Draw the axis lines and numeric tick labels."""
        canvas = self.canvas
        x0, x1 = self.x_scale.start, self.x_scale.stop
        y0, y1 = self.y_scale.start, self.y_scale.stop
        canvas.line(x0, y0, x1, y0, "#888888")
        canvas.line(x0, y0, x0, y1, "#888888")
        if x_ticks:
            for tick in self.x_scale.ticks():
                x = self.x_scale(tick)
                canvas.line(x, y0, x, y0 + 4, "#888888")
                canvas.text(x, y0 + 16, format_tick(tick), size=9)
        if y_ticks:
            for tick in self.y_scale.ticks():
                y = self.y_scale(tick)
                canvas.line(x0 - 4, y, x0, y, "#888888")
                canvas.text(x0 - 8, y + 3, format_tick(tick), size=9, anchor="end")

    def draw_category_axis(self, categories: Sequence[str], vertical: bool = True,
                           max_label_length: int = 12) -> None:
        """Draw category labels along the x axis."""
        canvas = self.canvas
        count = max(len(categories), 1)
        span = (self.x_scale.stop - self.x_scale.start) / count
        baseline = self.y_scale.start
        rotate = -30 if any(len(str(c)) > 6 for c in categories) else None
        for index, category in enumerate(categories):
            label = str(category)
            if len(label) > max_label_length:
                label = label[:max_label_length - 1] + "…"
            x = self.x_scale.start + span * (index + 0.5)
            canvas.text(x, baseline + 16, label, size=9,
                        anchor="end" if rotate else "middle", rotate=rotate)

    def category_band(self, index: int, count: int,
                      padding: float = 0.15) -> Tuple[float, float]:
        """Pixel extent of the *index*-th of *count* category bands."""
        count = max(count, 1)
        span = (self.x_scale.stop - self.x_scale.start) / count
        left = self.x_scale.start + span * index
        return left + span * padding, span * (1 - 2 * padding)
