"""The tabbed layout container returned by every ``plot*`` call.

The paper embeds Bokeh figures into a custom HTML/JS layout with tabs,
insight badges ("!") and how-to-guide pop-ups ("?").  :class:`Container`
reproduces that layout: each visualization lives on its own tab; insights and
how-to guides are attached per panel.
"""

from __future__ import annotations

import html as html_module
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.eda.howto import HowToEntry
from repro.eda.insights import Insight
from repro.eda.intermediates import Intermediates

_STYLE = """
<style>
.repro-container { font-family: Helvetica, Arial, sans-serif; color: #222; }
.repro-tabs { display: flex; flex-wrap: wrap; border-bottom: 2px solid #1f77b4;
              margin: 0; padding: 0; list-style: none; }
.repro-tabs label { padding: 6px 14px; cursor: pointer; background: #f2f5f8;
                    border: 1px solid #d5dde5; border-bottom: none;
                    border-radius: 4px 4px 0 0; margin-right: 2px; font-size: 13px; }
.repro-panel { display: none; padding: 12px; border: 1px solid #d5dde5;
               border-top: none; }
.repro-container input.repro-tab-state { display: none; }
.insight-badge { color: #fff; background: #d62728; border-radius: 50%;
                 padding: 0 6px; font-size: 11px; margin-left: 6px; }
.howto { margin-top: 8px; font-size: 12px; }
.howto summary { cursor: pointer; color: #1f77b4; }
.howto pre { background: #f7f7f7; padding: 6px; border-radius: 4px; }
.insight-list { font-size: 12px; color: #9a3324; margin: 6px 0 0 0;
                padding-left: 18px; }
.stats-table table { border-collapse: collapse; font-size: 12px; }
.stats-table td { border: 1px solid #e0e0e0; padding: 3px 10px; }
.stats-table tr.insight-row td { background: #fde8e8; }
.repro-progress { font-size: 11px; color: #777; margin: 4px 0; }
</style>
"""


@dataclass
class Panel:
    """One tab of the container: a chart plus its insights and how-to guide."""

    name: str
    title: str
    body: str
    insights: List[Insight] = field(default_factory=list)
    howto: Optional[HowToEntry] = None

    def to_html(self, container_id: str, index: int, checked: bool) -> str:
        """Render the tab label + panel body."""
        badge = (f'<span class="insight-badge" title="'
                 f'{html_module.escape("; ".join(str(i) for i in self.insights))}">!</span>'
                 if self.insights else "")
        insight_items = "".join(f"<li>{html_module.escape(str(insight))}</li>"
                                for insight in self.insights)
        insight_block = (f'<ul class="insight-list">{insight_items}</ul>'
                         if insight_items else "")
        howto_block = ""
        if self.howto is not None:
            howto_block = (
                '<details class="howto"><summary>? how to customize</summary>'
                f"<pre>{html_module.escape(self.howto.as_text())}</pre></details>")
        input_id = f"{container_id}-tab-{index}"
        checked_attr = " checked" if checked else ""
        return (
            f'<input class="repro-tab-state" type="radio" name="{container_id}" '
            f'id="{input_id}"{checked_attr}>'
            f'<label for="{input_id}">{html_module.escape(self.title)}{badge}</label>'
            f'<div class="repro-panel" data-panel="{html_module.escape(self.name)}">'
            f"{self.body}{insight_block}{howto_block}</div>")


class Container:
    """Rendered output of one EDA task: tabs of charts, stats and guides."""

    _counter = 0

    def __init__(self, intermediates: Intermediates, panels: List[Panel],
                 call: str, title: Optional[str] = None):
        Container._counter += 1
        self._id = f"repro-{Container._counter}"
        self.intermediates = intermediates
        self.panels = panels
        self.call = call
        self.title = title or call

    # ------------------------------------------------------------------ #
    # Introspection helpers (used heavily by tests and examples)
    # ------------------------------------------------------------------ #
    @property
    def tab_names(self) -> List[str]:
        """Machine names of the tabs, in display order."""
        return [panel.name for panel in self.panels]

    def panel(self, name: str) -> Panel:
        """Look up a panel by machine name."""
        for candidate in self.panels:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no panel named {name!r}; available: {self.tab_names}")

    @property
    def insights(self) -> List[Insight]:
        """All insights across all panels."""
        return list(self.intermediates.insights)

    # ------------------------------------------------------------------ #
    # Output
    # ------------------------------------------------------------------ #
    def to_html(self) -> str:
        """Render the container as a standalone HTML fragment."""
        tabs = "".join(panel.to_html(self._id, index, checked=(index == 0))
                       for index, panel in enumerate(self.panels))
        # Pure-CSS tabs: the checked radio button shows its sibling panel.
        panel_rules = "\n".join(
            f"#{self._id}-tab-{index}:checked ~ div[data-panel="
            f"'{panel.name}'] {{ display: block; }}"
            for index, panel in enumerate(self.panels))
        timing = self.intermediates.timings
        timing_line = ""
        if timing:
            total = sum(timing.values())
            timing_line = (f'<div class="repro-progress">computed in '
                           f'{total:.2f}s ({", ".join(f"{k}: {v:.2f}s" for k, v in timing.items())})</div>')
        return (
            f"{_STYLE}<style>{panel_rules}</style>"
            f'<div class="repro-container" id="{self._id}">'
            f"<h3>{html_module.escape(self.title)}</h3>{timing_line}"
            f'<div class="repro-tabs">{tabs}</div></div>')

    def _repr_html_(self) -> str:
        return self.to_html()

    def save(self, path: str) -> str:
        """Write a standalone HTML document to *path* and return the path."""
        document = ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
                    f"<title>{html_module.escape(self.title)}</title></head>"
                    f"<body>{self.to_html()}</body></html>")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(document)
        return path

    def show(self) -> None:
        """Print a text summary (stand-in for displaying in a notebook)."""
        print(f"{self.title}: tabs = {self.tab_names}, "
              f"insights = {len(self.insights)}")

    def __repr__(self) -> str:
        return (f"Container(call={self.call!r}, tabs={self.tab_names}, "
                f"insights={len(self.insights)})")
