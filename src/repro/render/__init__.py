"""The Render module (component 3 of the paper's back-end, Figure 3).

``render_intermediates`` converts the Compute module's
:class:`~repro.eda.intermediates.Intermediates` into a
:class:`~repro.render.layout.Container`: one tab per visualization, each with
its insight badge and how-to guide.  The mapping from intermediate item names
to chart renderers lives here so the Compute module stays free of any
presentation concerns.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.eda.config import Config
from repro.eda.howto import how_to_guide
from repro.eda.intermediates import Intermediates
from repro.render import charts
from repro.render.layout import Container, Panel
from repro.render.svg import color_for

__all__ = ["Container", "Panel", "render_intermediates"]

#: Display titles per intermediate item name.
_TITLES = {
    "stats": "Stats",
    "overview": "Overview",
    "variables": "Variables",
    "histogram": "Histogram",
    "kde_plot": "KDE Plot",
    "qq_plot": "Normal Q-Q Plot",
    "box_plot": "Box Plot",
    "bar_chart": "Bar Chart",
    "pie_chart": "Pie Chart",
    "word_frequencies": "Word Frequencies",
    "word_cloud": "Word Cloud",
    "scatter_plot": "Scatter Plot",
    "hexbin_plot": "Hexbin Plot",
    "binned_box_plot": "Binned Box Plot",
    "nested_bar_chart": "Nested Bar Chart",
    "stacked_bar_chart": "Stacked Bar Chart",
    "heat_map": "Heat Map",
    "multi_line_chart": "Line Chart",
    "correlation_pearson": "Pearson",
    "correlation_spearman": "Spearman",
    "correlation_kendall": "KendallTau",
    "correlation_scatter": "Scatter (regression)",
    "top_pairs": "Top Correlations",
    "missing_bar_chart": "Bar Chart",
    "missing_spectrum": "Spectrum",
    "nullity_correlation": "Nullity Correlation",
    "nullity_dendrogram": "Dendrogram",
    "missing_impact": "Impact",
    "pdf": "PDF",
    "cdf": "CDF",
}

#: Tab ordering preference; anything not listed keeps insertion order after these.
_ORDER = ["stats", "overview", "variables", "histogram", "kde_plot", "qq_plot",
          "box_plot", "bar_chart", "pie_chart", "word_frequencies", "word_cloud"]


def render_intermediates(intermediates: Intermediates, config: Config,
                         call: str = "plot(df)") -> Container:
    """Render every visualization in *intermediates* into a tabbed Container."""
    width = config.get("render.width")
    height = config.get("render.height")
    max_tabs = config.get("render.max_tabs")

    panels: List[Panel] = []
    names = _ordered_items(intermediates)
    for name in names:
        body = _render_item(name, intermediates, config, width, height)
        if body is None:
            continue
        panels.append(Panel(
            name=name,
            title=_TITLES.get(name, name.replace("_", " ").title()),
            body=body,
            insights=intermediates.insights_for(name),
            howto=how_to_guide(name, call=call),
        ))
        if len(panels) >= max_tabs:
            break
    title = f"DataPrep.EDA — {call}"
    return Container(intermediates, panels, call=call, title=title)


def _ordered_items(intermediates: Intermediates) -> List[str]:
    names = intermediates.visualization_names()
    ranked = [name for name in _ORDER if name in names]
    ranked.extend(name for name in names if name not in ranked)
    return ranked


def _render_item(name: str, intermediates: Intermediates, config: Config,
                 width: int, height: int) -> Optional[str]:
    """Render one intermediate item; None hides it from the container."""
    data = intermediates[name]
    column_label = ", ".join(intermediates.columns) or "dataset"

    if name == "stats":
        highlights = {insight.column: insight.message
                      for insight in intermediates.insights_for("stats")}
        return charts.render_stats_table(data, width, height,
                                         title=f"Statistics of {column_label}",
                                         highlights=highlights)
    if name == "overview":
        return charts.render_stats_table(data, width, height,
                                         title="Dataset statistics")
    if name == "variables":
        return _render_variables(data, config, width, height)
    if name == "histogram":
        return charts.render_histogram(data, width, height,
                                       title=f"Histogram of {column_label}")
    if name == "kde_plot":
        return _render_kde(data, width, height, column_label)
    if name == "qq_plot":
        return charts.render_qq_plot(data, width, height)
    if name == "box_plot":
        return _render_box(data, width, height, column_label)
    if name == "bar_chart":
        return charts.render_bar_chart(data, width, height,
                                       title=f"Bar chart of {column_label}")
    if name == "pie_chart":
        return charts.render_pie_chart(data, width, height,
                                       title=f"Pie chart of {column_label}")
    if name == "word_frequencies":
        return charts.render_bar_chart(
            {"categories": data.get("words", []), "counts": data.get("counts", [])},
            width, height, title=f"Word frequencies of {column_label}")
    if name == "word_cloud":
        return charts.render_word_cloud(data, width, height,
                                        title=f"Word cloud of {column_label}")
    if name == "scatter_plot":
        return charts.render_scatter(data, width, height,
                                     title=f"Scatter plot of {column_label}")
    if name == "correlation_scatter":
        return charts.render_scatter(data, width, height,
                                     title=f"Correlation of {column_label}",
                                     regression=True)
    if name == "hexbin_plot":
        return charts.render_heat_map(
            data.get("counts", []),
            [f"{edge:.2f}" for edge in data.get("x_edges", [])[:-1]],
            [f"{edge:.2f}" for edge in data.get("y_edges", [])[:-1]],
            width, height, title=f"Hexbin plot of {column_label}")
    if name == "binned_box_plot":
        boxes = [{"category": label, **box}
                 for label, box in zip(data.get("bins", []), data.get("boxes", []))]
        return charts.render_box_plots(boxes, width, height,
                                       title=f"Binned box plot of {column_label}")
    if name in ("nested_bar_chart", "stacked_bar_chart"):
        return charts.render_grouped_bars(
            data.get("groups", []), data.get("inner_categories", []), width, height,
            title=_TITLES[name] + f" of {column_label}",
            stacked=(name == "stacked_bar_chart"))
    if name == "heat_map":
        return charts.render_heat_map(
            data.get("counts", []), data.get("x_categories", []),
            data.get("y_categories", []), width, height,
            title=f"Heat map of {column_label}")
    if name == "multi_line_chart":
        return charts.render_line_chart(
            data.get("bins", []), data.get("series", {}), width, height,
            title=f"Distribution of {column_label}")
    if name.startswith("correlation_"):
        return _render_correlation(name, data, width, height)
    if name == "top_pairs":
        return _render_top_pairs(data, width, height)
    if name == "missing_bar_chart":
        return charts.render_bar_chart(
            {"categories": data.get("columns", []),
             "counts": data.get("missing_counts", [])},
            width, height, title="Missing values per column")
    if name == "missing_spectrum":
        return charts.render_missing_spectrum(data, width, height)
    if name == "nullity_correlation":
        return charts.render_heat_map(
            data.get("matrix", []), data.get("columns", []), data.get("columns", []),
            width, height, title="Nullity correlation", diverging=True)
    if name == "nullity_dendrogram":
        return charts.render_dendrogram(
            data.get("labels", []), data.get("linkage", []), width, height)
    if name == "missing_impact":
        return _render_missing_impact(data, width, height)
    if name in ("pdf", "cdf"):
        return _render_density_comparison(name, data, width, height)
    # Unknown items are shown as a table so nothing silently disappears.
    if isinstance(data, dict):
        return charts.render_stats_table(
            {key: value for key, value in data.items()
             if isinstance(value, (int, float, str, bool, type(None)))},
            width, height, title=_TITLES.get(name, name))
    return None


def _render_kde(data: Dict[str, Any], width: int, height: int,
                column_label: str) -> str:
    grid = data.get("grid", [])
    series = {"KDE": data.get("density", [])}
    return charts.render_line_chart(grid, series, width, height,
                                    title=f"KDE plot of {column_label}",
                                    x_label=column_label, y_label="density")


def _render_box(data: Dict[str, Any], width: int, height: int,
                column_label: str) -> str:
    if "boxes" in data:
        boxes = data["boxes"]
        label_key = "category" if boxes and "category" in boxes[0] else "label"
        return charts.render_box_plots(boxes, width, height,
                                       title=f"Box plot of {column_label}",
                                       label_key=label_key)
    return charts.render_box_plots([{**data, "category": column_label}],
                                   width, height,
                                   title=f"Box plot of {column_label}")


def _render_correlation(name: str, data: Dict[str, Any], width: int,
                        height: int) -> str:
    method = data.get("method", name.replace("correlation_", ""))
    if "matrix" in data:
        columns = data.get("columns", [])
        return charts.render_heat_map(data["matrix"], columns, columns, width,
                                      height, title=f"{method.title()} correlation",
                                      diverging=True)
    # Correlation vector of one column against the others.
    others = data.get("others", [])
    values = data.get("values", [])
    return charts.render_bar_chart(
        {"categories": others, "counts": values}, width, height,
        title=f"{method.title()} correlation with {data.get('column', '')}")


def _render_top_pairs(data: Any, width: int, height: int) -> str:
    rows = {f"{entry['col1']} x {entry['col2']}": round(entry["correlation"], 3)
            for entry in data}
    return charts.render_stats_table(rows or {"(none)": "no strongly correlated pairs"},
                                     width, height, title="Highly correlated pairs")


def _render_missing_impact(data: Dict[str, Any], width: int, height: int) -> str:
    """Impact panels: before/after distributions per impacted column."""
    if "type" in data:
        blocks = {"": data}
    else:
        blocks = data
    parts: List[str] = []
    for column, block in blocks.items():
        title = f"Impact on {column}" if column else "Impact of dropping missing rows"
        if block.get("type") == "numerical":
            edges = block.get("edges", [])
            centers = [(edges[i] + edges[i + 1]) / 2 for i in range(len(edges) - 1)]
            series = {"all rows": block.get("before_counts", []),
                      "after drop": block.get("after_counts", [])}
            parts.append(charts.render_line_chart(centers, series, width, height,
                                                  title=title))
        else:
            groups = [{"category": category,
                       "counts": [before, after]}
                      for category, before, after in zip(
                          block.get("categories", []),
                          block.get("before_counts", []),
                          block.get("after_counts", []))]
            parts.append(charts.render_grouped_bars(
                groups, ["all rows", "after drop"], width, height, title=title))
    return "\n".join(parts) if parts else charts.render_stats_table(
        {"(none)": "nothing to compare"}, width, height, title="Impact")


def _render_density_comparison(name: str, data: Dict[str, Any], width: int,
                               height: int) -> str:
    edges = data.get("edges", [])
    centers = [(edges[i] + edges[i + 1]) / 2 for i in range(len(edges) - 1)]
    series = {"all rows": data.get("before", []), "after drop": data.get("after", [])}
    return charts.render_line_chart(centers, series, width, height,
                                    title=name.upper())


def _render_variables(variables: Dict[str, Dict[str, Any]], config: Config,
                      width: int, height: int) -> str:
    """The per-column grid of the overview task: stats + small chart each."""
    parts: List[str] = []
    small_width, small_height = max(width // 2, 320), max(height // 2, 220)
    for column, entry in variables.items():
        parts.append(f"<h4>{column} <small>({entry.get('type')})</small></h4>")
        parts.append(charts.render_stats_table(entry.get("stats", {}), small_width,
                                               small_height, title=""))
        if "histogram" in entry:
            parts.append(charts.render_histogram(entry["histogram"], small_width,
                                                 small_height,
                                                 title=f"Histogram of {column}"))
        elif "bar_chart" in entry:
            parts.append(charts.render_bar_chart(entry["bar_chart"], small_width,
                                                 small_height,
                                                 title=f"Bar chart of {column}"))
    return "\n".join(parts)
