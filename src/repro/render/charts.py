"""Chart renderers: turn intermediate data structures into SVG strings.

Each function consumes the plain-python data the Compute module stores in
``Intermediates.items`` and produces a self-contained SVG string.  All
functions take explicit width/height so the layout can size panels uniformly.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.render.svg import (
    Canvas,
    PlotArea,
    color_for,
    diverging_color,
    format_tick,
    sequential_color,
)


# --------------------------------------------------------------------------- #
# Basic chart families
# --------------------------------------------------------------------------- #
def render_histogram(data: Dict[str, Any], width: int, height: int,
                     title: str = "Histogram") -> str:
    """Histogram from ``{"counts": [...], "edges": [...]}``."""
    counts = data.get("counts", [])
    edges = data.get("edges", [])
    if not counts or len(edges) != len(counts) + 1:
        return _empty_chart(width, height, title)
    area = PlotArea.create(width, height, (edges[0], edges[-1]),
                           (0, max(max(counts), 1)), title=title)
    area.draw_axes()
    baseline = area.y_scale(0)
    for index, count in enumerate(counts):
        x_left = area.x_scale(edges[index])
        x_right = area.x_scale(edges[index + 1])
        y_top = area.y_scale(count)
        area.canvas.rect(x_left, y_top, max(x_right - x_left - 0.5, 0.5),
                         baseline - y_top, color_for(0), opacity=0.85,
                         tooltip=f"[{format_tick(edges[index])}, "
                                 f"{format_tick(edges[index + 1])}): {count}")
    return area.canvas.to_svg()


def render_bar_chart(data: Dict[str, Any], width: int, height: int,
                     title: str = "Bar Chart", counts_key: str = "counts",
                     categories_key: str = "categories") -> str:
    """Vertical bar chart from category/count lists."""
    categories = [str(value) for value in data.get(categories_key, [])]
    counts = data.get(counts_key, [])
    if not categories or not counts:
        return _empty_chart(width, height, title)
    area = PlotArea.create(width, height, (0, len(categories)),
                           (0, max(max(counts), 1)), title=title)
    area.draw_axes(x_ticks=False)
    area.draw_category_axis(categories)
    baseline = area.y_scale(0)
    for index, count in enumerate(counts):
        left, band_width = area.category_band(index, len(categories))
        y_top = area.y_scale(count)
        area.canvas.rect(left, y_top, band_width, baseline - y_top, color_for(0),
                         opacity=0.85, tooltip=f"{categories[index]}: {count}")
    return area.canvas.to_svg()


def render_grouped_bars(groups: List[Dict[str, Any]], inner: List[str],
                        width: int, height: int, title: str,
                        stacked: bool = False) -> str:
    """Nested (grouped) or stacked bar chart for two categorical columns."""
    if not groups or not inner:
        return _empty_chart(width, height, title)
    if stacked:
        maximum = max((sum(group["counts"]) for group in groups), default=1)
    else:
        maximum = max((max(group["counts"]) for group in groups if group["counts"]),
                      default=1)
    outer_labels = [str(group["category"]) for group in groups]
    area = PlotArea.create(width, height, (0, len(groups)), (0, max(maximum, 1)),
                           title=title)
    area.draw_axes(x_ticks=False)
    area.draw_category_axis(outer_labels)
    baseline = area.y_scale(0)
    for group_index, group in enumerate(groups):
        left, band_width = area.category_band(group_index, len(groups))
        counts = group["counts"]
        if stacked:
            cumulative = 0.0
            for inner_index, count in enumerate(counts):
                y_top = area.y_scale(cumulative + count)
                y_bottom = area.y_scale(cumulative)
                area.canvas.rect(left, y_top, band_width, y_bottom - y_top,
                                 color_for(inner_index), opacity=0.9,
                                 tooltip=f"{group['category']} / {inner[inner_index]}: {count}")
                cumulative += count
        else:
            slot = band_width / max(len(counts), 1)
            for inner_index, count in enumerate(counts):
                y_top = area.y_scale(count)
                area.canvas.rect(left + slot * inner_index, y_top,
                                 max(slot - 1, 1), baseline - y_top,
                                 color_for(inner_index), opacity=0.9,
                                 tooltip=f"{group['category']} / {inner[inner_index]}: {count}")
    _legend(area.canvas, inner, width)
    return area.canvas.to_svg()


def render_line_chart(x_values: Sequence[float], series: Dict[str, Sequence[float]],
                      width: int, height: int, title: str,
                      x_label: str = "", y_label: str = "") -> str:
    """Multi-series line chart."""
    if not x_values or not series:
        return _empty_chart(width, height, title)
    all_values = [value for values in series.values() for value in values
                  if value == value]
    maximum = max(all_values, default=1.0)
    minimum = min(all_values, default=0.0)
    if minimum > 0:
        minimum = 0.0
    area = PlotArea.create(width, height, (min(x_values), max(x_values)),
                           (minimum, max(maximum, 1e-9)), title=title,
                           x_label=x_label, y_label=y_label)
    area.draw_axes()
    for index, (name, values) in enumerate(series.items()):
        points = [(area.x_scale(x), area.y_scale(y))
                  for x, y in zip(x_values, values) if y == y]
        area.canvas.polyline(points, color_for(index))
    _legend(area.canvas, list(series.keys()), width)
    return area.canvas.to_svg()


def render_scatter(data: Dict[str, Any], width: int, height: int,
                   title: str = "Scatter Plot",
                   regression: bool = False) -> str:
    """Scatter plot, optionally with a least-squares regression line."""
    x_values = data.get("x", [])
    y_values = data.get("y", [])
    if not x_values or not y_values:
        return _empty_chart(width, height, title)
    area = PlotArea.create(width, height, (min(x_values), max(x_values)),
                           (min(y_values), max(y_values)), title=title,
                           x_label=data.get("x_label", ""),
                           y_label=data.get("y_label", ""))
    area.draw_axes()
    for x, y in zip(x_values, y_values):
        area.canvas.circle(area.x_scale(x), area.y_scale(y), 2.2, color_for(0),
                           opacity=0.5)
    if regression and "slope" in data:
        slope, intercept = data["slope"], data["intercept"]
        x0, x1 = min(x_values), max(x_values)
        area.canvas.line(area.x_scale(x0), area.y_scale(slope * x0 + intercept),
                         area.x_scale(x1), area.y_scale(slope * x1 + intercept),
                         color_for(3), width=2.0)
    return area.canvas.to_svg()


def render_qq_plot(data: Dict[str, Any], width: int, height: int,
                   title: str = "Normal Q-Q Plot") -> str:
    """Normal Q-Q plot with the identity reference line."""
    theoretical = data.get("theoretical", [])
    sample = data.get("sample", [])
    finite = [(x, y) for x, y in zip(theoretical, sample)
              if x == x and y == y and abs(x) != math.inf]
    if not finite:
        return _empty_chart(width, height, title)
    xs = [x for x, _ in finite]
    ys = [y for _, y in finite]
    low = min(min(xs), min(ys))
    high = max(max(xs), max(ys))
    area = PlotArea.create(width, height, (low, high), (low, high), title=title,
                           x_label="theoretical quantiles",
                           y_label="sample quantiles")
    area.draw_axes()
    area.canvas.line(area.x_scale(low), area.y_scale(low), area.x_scale(high),
                     area.y_scale(high), "#999999", dash="4,3")
    for x, y in finite:
        area.canvas.circle(area.x_scale(x), area.y_scale(y), 2.2, color_for(0),
                           opacity=0.7)
    return area.canvas.to_svg()


def render_box_plots(boxes: List[Dict[str, Any]], width: int, height: int,
                     title: str = "Box Plot", label_key: str = "category") -> str:
    """One or more box-and-whisker glyphs side by side."""
    if not boxes:
        return _empty_chart(width, height, title)
    lows = [box.get("lower_whisker", box.get("min", 0.0)) for box in boxes]
    highs = [box.get("upper_whisker", box.get("max", 1.0)) for box in boxes]
    area = PlotArea.create(width, height, (0, len(boxes)),
                           (min(lows), max(max(highs), min(lows) + 1e-9)),
                           title=title)
    area.draw_axes(x_ticks=False)
    labels = [str(box.get(label_key, box.get("label", index)))
              for index, box in enumerate(boxes)]
    area.draw_category_axis(labels)
    for index, box in enumerate(boxes):
        left, band_width = area.category_band(index, len(boxes), padding=0.25)
        center = left + band_width / 2
        q1 = area.y_scale(box["q1"])
        q3 = area.y_scale(box["q3"])
        median = area.y_scale(box["median"])
        lower = area.y_scale(box.get("lower_whisker", box.get("min", box["q1"])))
        upper = area.y_scale(box.get("upper_whisker", box.get("max", box["q3"])))
        color = color_for(index)
        area.canvas.line(center, lower, center, q1, "#555555")
        area.canvas.line(center, q3, center, upper, "#555555")
        area.canvas.line(center - band_width / 4, lower, center + band_width / 4,
                         lower, "#555555")
        area.canvas.line(center - band_width / 4, upper, center + band_width / 4,
                         upper, "#555555")
        area.canvas.rect(left, q3, band_width, q1 - q3, color, opacity=0.7,
                         tooltip=f"{labels[index]}: median {format_tick(box['median'])}")
        area.canvas.line(left, median, left + band_width, median, "#222222", width=2)
        for outlier in box.get("outlier_samples", [])[:50]:
            area.canvas.circle(center, area.y_scale(outlier), 1.8, "#d62728",
                               opacity=0.7)
    return area.canvas.to_svg()


def render_heat_map(matrix: List[List[float]], x_categories: Sequence[str],
                    y_categories: Sequence[str], width: int, height: int,
                    title: str, diverging: bool = False) -> str:
    """Heat map of a dense matrix; diverging palette for correlations."""
    if not matrix or not x_categories or not y_categories:
        return _empty_chart(width, height, title)
    flat = [value for row in matrix for value in row
            if value is not None and value == value]
    maximum = max((abs(value) for value in flat), default=1.0) or 1.0
    area = PlotArea.create(width, height, (0, len(x_categories)),
                           (0, len(y_categories)), title=title)
    area.draw_category_axis([str(c) for c in x_categories])
    n_rows = len(y_categories)
    cell_height = (area.y_scale.start - area.y_scale.stop) / n_rows
    for row_index, row_name in enumerate(y_categories):
        y_top = area.y_scale.stop + row_index * cell_height
        area.canvas.text(area.x_scale.start - 6, y_top + cell_height / 2 + 3,
                         str(row_name)[:12], size=9, anchor="end")
        for col_index in range(len(x_categories)):
            value = matrix[row_index][col_index] if row_index < len(matrix) and \
                col_index < len(matrix[row_index]) else None
            left, band_width = area.category_band(col_index, len(x_categories),
                                                  padding=0.02)
            if value is None or value != value:
                fill = "#eeeeee"
                label = "n/a"
            elif diverging:
                fill = diverging_color(value / maximum if maximum else 0.0)
                label = f"{value:.2f}"
            else:
                fill = sequential_color(value / maximum if maximum else 0.0)
                label = format_tick(value)
            area.canvas.rect(left, y_top + 1, band_width, cell_height - 2, fill,
                             tooltip=f"{y_categories[row_index]} x "
                                     f"{x_categories[col_index]}: {label}")
    return area.canvas.to_svg()


def render_pie_chart(data: Dict[str, Any], width: int, height: int,
                     title: str = "Pie Chart") -> str:
    """Pie chart from label/count lists."""
    labels = data.get("labels", [])
    counts = data.get("counts", [])
    total = sum(counts)
    if not labels or total <= 0:
        return _empty_chart(width, height, title)
    canvas = Canvas(width, height)
    canvas.text(width / 2, 16, title, size=13, bold=True)
    center_x, center_y = width * 0.4, height / 2 + 10
    radius = min(width, height) / 2 - 40
    angle = -math.pi / 2
    for index, (label, count) in enumerate(zip(labels, counts)):
        fraction = count / total
        sweep = fraction * 2 * math.pi
        end = angle + sweep
        large_arc = 1 if sweep > math.pi else 0
        x1 = center_x + radius * math.cos(angle)
        y1 = center_y + radius * math.sin(angle)
        x2 = center_x + radius * math.cos(end)
        y2 = center_y + radius * math.sin(end)
        canvas.elements.append(
            f'<path d="M {center_x:.2f} {center_y:.2f} L {x1:.2f} {y1:.2f} '
            f'A {radius:.2f} {radius:.2f} 0 {large_arc} 1 {x2:.2f} {y2:.2f} Z" '
            f'fill="{color_for(index)}" fill-opacity="0.9">'
            f'<title>{label}: {count} ({fraction:.1%})</title></path>')
        angle = end
    _legend(canvas, [f"{label} ({count / total:.0%})"
                     for label, count in zip(labels, counts)], width)
    return canvas.to_svg()


def render_dendrogram(labels: Sequence[str], linkage: List[Dict[str, Any]],
                      width: int, height: int,
                      title: str = "Nullity Dendrogram") -> str:
    """Dendrogram from hierarchical-clustering linkage steps."""
    if not labels:
        return _empty_chart(width, height, title)
    canvas = Canvas(width, height)
    canvas.text(width / 2, 16, title, size=13, bold=True)
    margin_left, margin_right, margin_top, margin_bottom = 90, 20, 30, 16
    n_leaves = len(labels)
    leaf_positions: Dict[int, Tuple[float, float]] = {}
    usable_height = height - margin_top - margin_bottom
    for index, label in enumerate(labels):
        y = margin_top + usable_height * (index + 0.5) / n_leaves
        leaf_positions[index] = (margin_left, y)
        canvas.text(margin_left - 6, y + 3, str(label)[:14], size=9, anchor="end")
    if not linkage:
        return canvas.to_svg()
    max_distance = max((node["distance"] for node in linkage), default=1.0) or 1.0
    x_span = width - margin_left - margin_right
    positions = dict(leaf_positions)
    for step, node in enumerate(linkage):
        left = positions[node["left"]]
        right = positions[node["right"]]
        x = margin_left + (node["distance"] / max_distance) * x_span
        canvas.line(left[0], left[1], x, left[1], "#1f77b4")
        canvas.line(right[0], right[1], x, right[1], "#1f77b4")
        canvas.line(x, left[1], x, right[1], "#1f77b4")
        positions[n_leaves + step] = (x, (left[1] + right[1]) / 2)
    return canvas.to_svg()


def render_stats_table(stats: Dict[str, Any], width: int, height: int,
                       title: str = "Statistics",
                       highlights: Optional[Dict[str, str]] = None) -> str:
    """Two-column key/value statistics table rendered as HTML."""
    highlights = highlights or {}
    rows = []
    for key, value in stats.items():
        css = ' class="insight-row"' if key in highlights else ""
        hint = f' title="{highlights[key]}"' if key in highlights else ""
        rows.append(f"<tr{css}{hint}><td>{_escape(key)}</td>"
                    f"<td>{_escape(_format_value(value))}</td></tr>")
    body = "\n".join(rows)
    return (f'<div class="stats-table" style="max-height:{height}px">'
            f"<h4>{_escape(title)}</h4>"
            f"<table>{body}</table></div>")


def render_missing_spectrum(data: Dict[str, Any], width: int, height: int,
                            title: str = "Missing Spectrum") -> str:
    """Missing spectrum: per-column missing density along row order."""
    columns = data.get("columns", [])
    densities = data.get("densities", [])
    if not columns or not densities:
        return _empty_chart(width, height, title)
    x_values = list(range(len(densities)))
    series = {str(column): [row[index] for row in densities]
              for index, column in enumerate(columns)}
    return render_line_chart(x_values, series, width, height, title,
                             x_label="row block", y_label="missing fraction")


def render_word_cloud(data: Dict[str, Any], width: int, height: int,
                      title: str = "Word Cloud") -> str:
    """Deterministic word-cloud-like layout (size encodes weight)."""
    words = data.get("words", [])
    weights = data.get("weights", [])
    if not words:
        return _empty_chart(width, height, title)
    canvas = Canvas(width, height)
    canvas.text(width / 2, 16, title, size=13, bold=True)
    columns = 3
    for index, (word, weight) in enumerate(zip(words, weights)):
        row, column = divmod(index, columns)
        x = width * (column + 0.5) / columns
        y = 44 + row * 34
        if y > height - 10:
            break
        canvas.text(x, y, word, size=int(10 + 16 * weight),
                    color=color_for(index), bold=weight > 0.66)
    return canvas.to_svg()


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def _legend(canvas: Canvas, labels: Sequence[str], width: int) -> None:
    x = width - 14
    for index, label in enumerate(labels[:8]):
        y = 30 + index * 14
        canvas.rect(x - 8, y - 8, 8, 8, color_for(index))
        canvas.text(x - 12, y, str(label)[:18], size=9, anchor="end")


def _empty_chart(width: int, height: int, title: str) -> str:
    canvas = Canvas(width, height)
    canvas.text(width / 2, 16, title, size=13, bold=True)
    canvas.text(width / 2, height / 2, "no data to display", size=11,
                color="#999999")
    return canvas.to_svg()


def _format_value(value: Any) -> str:
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        if value != value:
            return "NaN"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.4g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, (list, tuple)):
        return ", ".join(str(item) for item in value)
    return str(value)


def _escape(text: Any) -> str:
    import html as html_module
    return html_module.escape(str(text))
