"""Small dependency-free helpers shared across layers.

This module sits below every other ``repro`` package so that neutral
utilities — currently the default execution concurrency — can be shared by
the graph layer, the compute layer and the I/O layer without any of them
importing each other.  (``default_worker_count`` used to live in
``repro.frame.io``, which forced the scheduler and the compute context to
reach *down* into the I/O layer for a number that has nothing to do with
CSV parsing.)
"""

from __future__ import annotations

import os
from typing import Optional

#: Task-key prefixes of the partition materialization tasks every source
#: emits (in-memory row slices and CSV byte-range parses).  The schedulers
#: classify executed tasks by these prefixes to report projected-vs-full
#: parse counts without the graph layer having to know about frames.
PARSE_TASK_PREFIXES = ("partition", "read_csv_partition")

#: Suffix appended to a partition task's key prefix when the task carries a
#: column projection (parses/slices a subset of the columns).
PROJECTED_SUFFIX = ".proj"

#: Suffix appended to a partition task's key prefix when the task carries a
#: pushed-down row predicate (filters rows inside the parse).  Composes
#: with the projection suffix as ``".proj.filt"``.
FILTERED_SUFFIX = ".filt"


def projected_prefix(prefix: str) -> str:
    """The task-key prefix of the projected variant of a partition task."""
    return prefix + PROJECTED_SUFFIX


def filtered_prefix(prefix: str) -> str:
    """The task-key prefix of the predicate-filtered variant of a task."""
    return prefix + FILTERED_SUFFIX


def classify_parse_key(key: str) -> Optional[str]:
    """Classify a task key as a ``"full"`` or ``"projected"`` partition parse.

    Task keys look like ``"<prefix>-<counter>"``; anything that is not a
    recognised partition materialization returns None.  This is how
    :class:`~repro.graph.scheduler.RunStats` counts parse work per kind
    without inspecting task arguments.  The filtered marker is orthogonal —
    a filtered parse still classifies as projected or full by its column
    coverage; use :func:`is_filtered_parse_key` for the predicate axis.
    """
    prefix, dash, _ = key.rpartition("-")
    if not dash:
        return None
    if prefix.endswith(FILTERED_SUFFIX):
        prefix = prefix[:-len(FILTERED_SUFFIX)]
    if prefix.endswith(PROJECTED_SUFFIX):
        base = prefix[:-len(PROJECTED_SUFFIX)]
        return "projected" if base in PARSE_TASK_PREFIXES else None
    return "full" if prefix in PARSE_TASK_PREFIXES else None


def is_filtered_parse_key(key: str) -> bool:
    """Whether a task key is a partition parse carrying a row predicate."""
    prefix, dash, _ = key.rpartition("-")
    if not dash or not prefix.endswith(FILTERED_SUFFIX):
        return False
    return classify_parse_key(key) is not None


def parse_task_byte_span(args: tuple) -> int:
    """Bytes an executed partition-parse task read, from its positional args.

    CSV partition tasks lead with ``(path, byte_start, byte_stop, ...)``;
    the span is what the incremental-refresh counters report as
    ``bytes_reparsed``.  In-memory slice tasks (``(frame, start, stop)``)
    and anything else shaped differently report zero bytes — they still
    count as executed chunks, they just read no file bytes.
    """
    if len(args) >= 3 and isinstance(args[0], str) \
            and type(args[1]) is int and type(args[2]) is int:
        return max(0, args[2] - args[1])
    return 0


def default_worker_count() -> int:
    """Default execution concurrency: bounded CPU count.

    The single source of truth shared by the threaded and process
    schedulers, the compute context and ``scan_csv``'s budget math — if
    these diverged, the context's worker-aware chunk-size re-derivation
    would disagree with the scan's and every warm EDA call would pay a
    full-file layout rescan.
    """
    return min(8, os.cpu_count() or 4)
