"""Small dependency-free helpers shared across layers.

This module sits below every other ``repro`` package so that neutral
utilities — currently the default execution concurrency — can be shared by
the graph layer, the compute layer and the I/O layer without any of them
importing each other.  (``default_worker_count`` used to live in
``repro.frame.io``, which forced the scheduler and the compute context to
reach *down* into the I/O layer for a number that has nothing to do with
CSV parsing.)
"""

from __future__ import annotations

import os


def default_worker_count() -> int:
    """Default execution concurrency: bounded CPU count.

    The single source of truth shared by the threaded and process
    schedulers, the compute context and ``scan_csv``'s budget math — if
    these diverged, the context's worker-aware chunk-size re-derivation
    would disagree with the scan's and every warm EDA call would pay a
    full-file layout rescan.
    """
    return min(8, os.cpu_count() or 4)
