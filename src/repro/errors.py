"""Exception hierarchy shared across the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming errors
such as ``TypeError`` raised by misuse of third-party code.
"""

from __future__ import annotations

from typing import Iterable, Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class FrameError(ReproError):
    """Errors raised by the columnar DataFrame substrate (``repro.frame``)."""


class ColumnNotFoundError(FrameError, KeyError):
    """A referenced column does not exist in the DataFrame."""

    def __init__(self, name: str, available: Optional[Iterable[str]] = None):
        self.name = name
        self.available = list(available) if available is not None else None
        message = f"column {name!r} not found"
        if self.available is not None:
            suggestion = _closest(name, self.available)
            if suggestion is not None:
                message += f"; did you mean {suggestion!r}?"
            else:
                message += f"; available columns: {self.available}"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError.__str__ adds quotes around args[0]
        return self.args[0]


class DTypeError(FrameError):
    """A value or column has an incompatible data type for the operation."""


class LengthMismatchError(FrameError):
    """Columns of differing length were combined into one DataFrame."""


class GraphError(ReproError):
    """Errors raised by the lazy task-graph engine (``repro.graph``)."""


class CycleError(GraphError):
    """The task graph contains a cycle and cannot be scheduled."""


class SchedulerError(GraphError):
    """A task failed while being executed by a scheduler."""

    def __init__(self, key: str, cause: BaseException):
        self.key = key
        self.cause = cause
        super().__init__(f"task {key!r} failed: {cause!r}")


class ConfigError(ReproError):
    """An invalid configuration key or value was supplied by the user."""

    def __init__(self, message: str, key: Optional[str] = None,
                 suggestion: Optional[str] = None):
        self.key = key
        self.suggestion = suggestion
        if suggestion is not None:
            message = f"{message}; did you mean {suggestion!r}?"
        super().__init__(message)


class EDAError(ReproError):
    """Errors raised by the task-centric EDA layer (``repro.eda``)."""


class RenderError(ReproError):
    """Errors raised while rendering intermediates into charts or HTML."""


class DatasetError(ReproError):
    """Errors raised by the synthetic dataset generators."""


def _closest(name: str, candidates: Iterable[str]) -> Optional[str]:
    """Return the candidate closest to *name* using a simple edit distance.

    Only returns a suggestion when the distance is small relative to the
    length of the name, to avoid absurd "did you mean" hints.
    """
    best: Optional[str] = None
    best_distance = 10 ** 9
    for candidate in candidates:
        distance = _levenshtein(name.lower(), candidate.lower())
        if distance < best_distance:
            best, best_distance = candidate, distance
    if best is None:
        return None
    if best_distance <= max(1, len(name) // 3):
        return best
    return None


def _levenshtein(a: str, b: str) -> int:
    """Classic dynamic-programming Levenshtein distance between two strings."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(previous[j] + 1,
                               current[j - 1] + 1,
                               previous[j - 1] + cost))
        previous = current
    return previous[-1]
