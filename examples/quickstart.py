"""Quickstart: load a CSV, run the three task-centric functions, save HTML.

Run with::

    python examples/quickstart.py

The script writes a small synthetic CSV next to itself, loads it back with
``repro.read_csv`` and walks through the paper's task-centric API:
``plot`` (overview + univariate), ``plot_correlation`` and ``plot_missing``,
finishing with a full profile report.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

import repro
from repro.datasets import load_kaggle_like


def main() -> None:
    output_dir = tempfile.mkdtemp(prefix="repro_quickstart_")

    # 1. Get some data.  Here we generate a Titanic-shaped dataset and write
    #    it to CSV, then read it back — exactly the path a real user follows.
    frame = load_kaggle_like("titanic")
    csv_path = os.path.join(output_dir, "titanic_like.csv")
    repro.write_csv(frame, csv_path)
    df = repro.read_csv(csv_path)
    print(f"loaded {csv_path}: {df.shape[0]} rows x {df.shape[1]} columns")

    # 2. Overview analysis: "I want an overview of the dataset".
    overview = repro.plot(df)
    overview.save(os.path.join(output_dir, "overview.html"))
    print("overview tabs:", overview.tab_names)

    # 3. Univariate analysis of one numerical column.
    column = df.numeric_columns()[0]
    univariate = repro.plot(df, column)
    univariate.save(os.path.join(output_dir, f"univariate_{column}.html"))
    print(f"univariate analysis of {column!r}:", univariate.tab_names)
    for insight in univariate.insights:
        print("  insight:", insight)

    # 4. Correlation analysis across all numerical columns.
    correlation = repro.plot_correlation(df)
    correlation.save(os.path.join(output_dir, "correlation.html"))
    print("correlation tabs:", correlation.tab_names)

    # 5. Missing-value analysis.
    missing = repro.plot_missing(df)
    missing.save(os.path.join(output_dir, "missing.html"))
    print("missing-value tabs:", missing.tab_names)

    # 6. The full profile report (the Table 2 workload).
    report = repro.create_report(df, title="Quickstart report")
    report_path = report.save(os.path.join(output_dir, "report.html"))
    print(f"profile report with sections {report.section_names} "
          f"written to {report_path}")
    print(f"all output files are in {output_dir}")


if __name__ == "__main__":
    main()
