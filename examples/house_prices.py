"""The paper's running example: EDA for a house-price regression model.

Section 3.1 of the paper walks through the EDA tasks a data scientist runs
before fitting a model that predicts house prices from ``size``,
``year_built``, ``city`` and ``house_type``.  This script reproduces that
workflow end to end, including the Figure 1 interaction: remove price
outliers, re-run the univariate analysis, and customize the histogram via the
how-to guide's config key.

Run with::

    python examples/house_prices.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

import repro
from repro.frame import Column, DataFrame


def build_housing_data(n_rows: int = 20_000, seed: int = 0) -> DataFrame:
    """Synthetic housing data with the schema of the paper's example."""
    rng = np.random.default_rng(seed)
    size = rng.normal(2000.0, 600.0, n_rows).clip(350, None)
    year_built = rng.integers(1920, 2021, n_rows)
    city = rng.choice(["vancouver", "burnaby", "richmond", "surrey"],
                      n_rows, p=[0.45, 0.25, 0.2, 0.1])
    house_type = rng.choice(["detached", "townhouse", "condo"],
                            n_rows, p=[0.35, 0.2, 0.45])
    city_premium = np.select(
        [city == "vancouver", city == "burnaby", city == "richmond"],
        [1.45, 1.15, 1.1], default=1.0)
    type_premium = np.select(
        [house_type == "detached", house_type == "townhouse"], [1.4, 1.1],
        default=1.0)
    price = (size * 260.0 * city_premium * type_premium
             + (year_built - 1920) * 900.0
             + rng.lognormal(10.0, 0.6, n_rows))
    # A handful of extreme luxury listings create the outliers of Figure 1.
    luxury = rng.random(n_rows) < 0.004
    price[luxury] *= rng.uniform(3.0, 8.0, luxury.sum())
    # Listings missing the price (not yet sold) and the year built.
    price[rng.random(n_rows) < 0.06] = np.nan
    year = year_built.astype(np.float64)
    year[rng.random(n_rows) < 0.03] = np.nan
    return DataFrame([
        Column("size", size),
        Column("year_built", year),
        Column("city", list(city)),
        Column("house_type", list(house_type)),
        Column("price", price),
    ])


def main() -> None:
    output_dir = tempfile.mkdtemp(prefix="repro_house_prices_")
    df = build_housing_data()
    print(f"housing data: {df.shape[0]} rows, columns {df.columns}")

    # Step 1 — overview: what is in the dataset?
    repro.plot(df).save(os.path.join(output_dir, "01_overview.html"))

    # Step 2 — univariate analysis of the target (Figure 1, part A line 2).
    univariate = repro.plot(df, "price")
    univariate.save(os.path.join(output_dir, "02_price.html"))
    print("price insights before outlier removal:")
    for insight in univariate.insights:
        print("  ", insight)

    # Step 3 — remove the outliers (Figure 1, part A line 1) and re-run.
    threshold = 1_400_000.0
    price_values = df.column("price").to_numpy()
    keep = ~(price_values > threshold)
    filtered = df.filter(keep)
    print(f"removed {len(df) - len(filtered)} listings above ${threshold:,.0f}")
    cleaned = repro.plot(filtered, "price")
    cleaned.save(os.path.join(output_dir, "03_price_filtered.html"))

    # Step 4 — the how-to guide says the histogram is tuned via "hist.bins";
    # re-run with a finer histogram (Figure 1, part F).
    fine = repro.plot(filtered, "price", config={"hist.bins": 200})
    fine.save(os.path.join(output_dir, "04_price_200_bins.html"))
    print("histogram bins:",
          len(fine.intermediates["histogram"]["counts"]))

    # Step 5 — feature selection: which features correlate with the target?
    correlation = repro.plot_correlation(filtered)
    correlation.save(os.path.join(output_dir, "05_correlation.html"))
    pearson = correlation.intermediates["correlation_pearson"]
    print("pearson correlation matrix columns:", pearson["columns"])
    single = repro.plot_correlation(filtered, "price")
    print("strongest partner of price:",
          single.intermediates.stats["strongest_partner"])

    # Step 6 — are the missing prices ignorable?  Check the impact of
    # dropping them on the feature distributions.
    missing = repro.plot_missing(filtered, "price")
    missing.save(os.path.join(output_dir, "06_missing_price.html"))
    for insight in missing.insights:
        print("  missing-value insight:", insight)

    # Step 7 — bivariate analysis of the strongest feature against the target.
    bivariate = repro.plot(filtered, "size", "price")
    bivariate.save(os.path.join(output_dir, "07_size_vs_price.html"))
    print("size vs price pearson correlation:",
          round(bivariate.intermediates.stats["pearson_correlation"], 3))
    print(f"all output files are in {output_dir}")


if __name__ == "__main__":
    main()
