"""Missing-value analysis on the DelayedFlights-shaped study dataset.

The user study's task 4 asks participants where missing values concentrate
and whether dropping them changes other columns.  This script shows how the
``plot_missing`` family answers those questions in three calls of increasing
granularity, and how the raw intermediates can be pulled out for custom
post-processing (the Compute/Render separation of Section 4.2).

Run with::

    python examples/flight_delays_missing_values.py
"""

from __future__ import annotations

import os
import tempfile

import repro
from repro.datasets import delayed_flights_dataset


def main() -> None:
    output_dir = tempfile.mkdtemp(prefix="repro_flights_")
    df = delayed_flights_dataset(n_rows=80_000)
    print(f"flights data: {df.shape[0]} rows x {df.shape[1]} columns")

    # 1. Overview: which columns have missing values, and where do they sit?
    overview = repro.plot_missing(df)
    overview.save(os.path.join(output_dir, "missing_overview.html"))
    bar = overview.intermediates["missing_bar_chart"]
    print("missing cells per column:")
    for column, count in zip(bar["columns"], bar["missing_counts"]):
        if count:
            print(f"  {column:20s} {count:>8d}")

    # 2. Column-level: what happens to every other column if the rows with a
    #    missing arrival_delay (cancelled flights) are dropped?
    impact = repro.plot_missing(df, "arrival_delay")
    impact.save(os.path.join(output_dir, "missing_arrival_delay.html"))
    for insight in impact.insights:
        print("  insight:", insight)

    # 3. Pair-level: the impact of dropping carrier_delay-missing rows on the
    #    arrival delay distribution — histogram, PDF, CDF and box plots.
    pair = repro.plot_missing(df, "carrier_delay", "arrival_delay")
    pair.save(os.path.join(output_dir, "missing_carrier_vs_arrival.html"))
    cdf = pair.intermediates["cdf"]
    median_shift = _median_from_cdf(cdf["edges"], cdf["before"]) - \
        _median_from_cdf(cdf["edges"], cdf["after"])
    print(f"median arrival delay shift after dropping carrier_delay-missing "
          f"rows: {median_shift:+.1f} minutes")

    # 4. Intermediates mode: feed the nullity correlation into your own code.
    intermediates = repro.plot_missing(df, mode="intermediates")
    nullity = intermediates["nullity_correlation"]
    print("columns participating in the nullity correlation:",
          nullity["columns"])
    print(f"all output files are in {output_dir}")


def _median_from_cdf(edges, cumulative) -> float:
    """Read the median off a CDF defined over histogram bin edges."""
    for index, value in enumerate(cumulative):
        if value >= 0.5:
            return (edges[index] + edges[index + 1]) / 2.0
    return float(edges[-1])


if __name__ == "__main__":
    main()
