"""Profile reports on larger data: the lazy pipeline and engine choices.

This example mirrors Section 6.2 of the paper on a laptop scale: it builds a
bitcoin-shaped dataset, generates a profile report through the partitioned
lazy pipeline, compares the execution engines on the same workload, and shows
the intermediates-sharing statistics the optimizer reports.

Run with::

    python examples/large_data_report.py
"""

from __future__ import annotations

import os
import tempfile
import time

import repro
from repro.baselines import eager_profile_report
from repro.datasets import bitcoin_dataset
from repro.eda.compute import ComputeContext, compute_overview
from repro.eda.config import Config
from repro.graph.engines import available_engines, get_engine


def main() -> None:
    output_dir = tempfile.mkdtemp(prefix="repro_large_data_")
    n_rows = 60_000
    df = bitcoin_dataset(n_rows=n_rows, seed=0)
    print(f"bitcoin-shaped data: {n_rows:,} rows x {df.shape[1]} columns "
          f"({df.memory_bytes() / 1e6:.0f} MB in memory)")

    # 1. DataPrep.EDA report through the partitioned lazy pipeline.
    config = {"compute.use_graph": "always", "compute.partition_rows": 50_000}
    started = time.perf_counter()
    report = repro.create_report(df, config=config, title="Bitcoin report")
    dataprep_seconds = time.perf_counter() - started
    report.save(os.path.join(output_dir, "bitcoin_report.html"))
    print(f"DataPrep.EDA report: {dataprep_seconds:.1f}s "
          f"(section timings: "
          f"{ {name: round(value, 2) for name, value in report.timings.items()} })")

    # 2. The eager baseline profiler on the same data.
    started = time.perf_counter()
    eager_profile_report(df, render=True, kendall_max_rows=50_000)
    baseline_seconds = time.perf_counter() - started
    print(f"eager baseline report: {baseline_seconds:.1f}s "
          f"({baseline_seconds / dataprep_seconds:.1f}x slower)")

    # 3. Engine comparison on the plot(df) intermediates (Figure 6a shape).
    engine_config = Config.from_user({"compute.use_graph": "always",
                                      "compute.partition_rows": 50_000,
                                      "insight.enabled": False})
    print("engine comparison for plot(df) intermediates:")
    for engine_name in available_engines():
        context = ComputeContext(df, engine_config,
                                 engine=get_engine(engine_name))
        started = time.perf_counter()
        compute_overview(df, engine_config, context=context)
        elapsed = time.perf_counter() - started
        shared = sum(report.shared_tasks for report in context.reports)
        executed = sum(report.tasks_executed for report in context.reports)
        print(f"  {engine_name:12s} {elapsed:6.2f}s "
              f"({executed} tasks executed, {shared} shared)")
    print(f"all output files are in {output_dir}")


if __name__ == "__main__":
    main()
